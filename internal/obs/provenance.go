package obs

// Placement decision provenance (schema v3): the fifth sink. Where the
// metrics/events/trace/tsdb sinks record *what* a run did, the provenance
// sink records *why* every VM and app landed where it did — the candidate
// banks each placer considered, the lookahead/marginal-rate score behind
// the choice, and the constraint that eliminated every candidate it passed
// over. Records share the event-log envelope and merge in cell order like
// the other sinks, so provenance logs from parallel sweeps are
// byte-identical to serial runs.
//
// The hot path is alloc-guarded: every ProvRecorder method is nil-safe and
// returns before touching any state when the recorder is nil or disabled,
// so a run without -provenance pays one pointer test per instrumentation
// site and zero allocations (TestAllocGuardProvenance pins this).

// Provenance stages: which phase of a placer produced a decision. One
// decision record is keyed by (stage, vm, app); app is -1 for VM-level
// decisions (bank entitlement, region assignment).
const (
	// StageLatCrit is latency-critical data placement: nearest-first bank
	// filling with per-VM exclusivity (latCritPlace).
	StageLatCrit = "lat-crit"
	// StageVMBanks is Jumanji's per-VM bank-isolation step: lookahead over
	// combined batch curves, then round-robin nearest-free-bank claiming.
	StageVMBanks = "vm-banks"
	// StageBatch is Jigsaw-style batch placement: lookahead sizing then
	// greedy nearest-first filling inside the allowed bank mask.
	StageBatch = "batch"
	// StageOverlayBanks is IdealBatch's overlay-LLC bank assignment.
	StageOverlayBanks = "overlay-banks"
	// StageVMWays is VM-Part's per-VM way division of the batch pool.
	StageVMWays = "vm-ways"
	// StageStripe is S-NUCA striping across every bank (Static, Adaptive,
	// VM-Part, Fixed): no candidates, the whole mesh is the placement.
	StageStripe = "stripe"
	// StageTrade is the Trade placer's hit/miss-latency bank trades.
	StageTrade = "trade"
	// StageRegionAssign is the Sharded wrapper's stage 1: assigning VMs to
	// mesh regions. Candidate "banks" are region IDs.
	StageRegionAssign = "region-assign"
)

// Elimination reasons: why a candidate bank (or region) was passed over.
const (
	// ElimSecurityDomain: the bank is claimed by a different VM and per-VM
	// bank isolation (the security-domain constraint) forbids sharing it.
	ElimSecurityDomain = "security-domain-conflict"
	// ElimCapacity: the bank (or region) had no free capacity left.
	ElimCapacity = "capacity"
	// ElimWayQuantum: the allocation quantum (one way / one bank) made the
	// candidate infeasible at the granted size.
	ElimWayQuantum = "way-quantum"
	// ElimRegionBoundary: the sharded wrapper's region partitioning ruled
	// the candidate out (region full, or bank outside the VM's region).
	ElimRegionBoundary = "region-boundary"
	// ElimDistance: a free candidate lost to a strictly closer bank.
	ElimDistance = "distance"
	// ElimDistanceTie: a free candidate at the same distance lost the
	// deterministic lowest-index tie-break.
	ElimDistanceTie = "distance-tie-break"
	// ElimTradeNoCompensation: a Trade far-bank candidate was rejected
	// because no affordable batch compensation existed.
	ElimTradeNoCompensation = "compensation-infeasible"
	// ElimTradeDonorCost: a Trade candidate was rejected because the donor
	// batch app's extra misses outweighed the latency-critical hop gain.
	ElimTradeDonorCost = "donor-miss-cost"
)

// Fallback valves: the fleet-scale safety valves (PR 8) that relax an
// infeasible placement instead of panicking. One placement_valve record is
// emitted per firing.
const (
	// ValveShrinkLatSizes: Jumanji/IdealBatch shrank every latency-critical
	// target by 10% and retried the whole placement.
	ValveShrinkLatSizes = "shrink-lat-sizes"
	// ValveBankMinStepUp: a VM's minimum bank entitlement was stepped up by
	// one bank so way-granular claims fold into whole banks.
	ValveBankMinStepUp = "bank-min-step-up"
	// ValveWayQuantumRescale: the one-way-per-app minimum exceeded the
	// VM's bank capacity; Min/Step were scaled down proportionally.
	ValveWayQuantumRescale = "way-quantum-rescale"
	// ValveVMQuantumRescale: VM-Part's one-way-per-VM minimum exceeded the
	// batch pool; the quantum was scaled down.
	ValveVMQuantumRescale = "vm-quantum-rescale"
	// ValveStaticWayRescale: Static's fixed per-app ways exceeded the
	// associativity; ways per app were split equally instead.
	ValveStaticWayRescale = "static-way-rescale"
	// ValveAdaptiveScaleDown: controller demand exceeded the LLC minus the
	// batch reserve; latency-critical stripes were scaled proportionally.
	ValveAdaptiveScaleDown = "adaptive-scale-down"
	// ValveOverlayBudgetBump: IdealBatch's overlay budget was bumped to one
	// bank per VM after latency-critical data consumed nearly everything.
	ValveOverlayBudgetBump = "overlay-budget-bump"
	// ValveRegionFallback: no nearby region could hold the VM; the sharded
	// wrapper fell back to the most-free count-feasible region.
	ValveRegionFallback = "region-fallback"
	// ValveRegionDegrade: per-region entitlements exceeded region capacity;
	// the sharded wrapper degraded the batch balance floor.
	ValveRegionDegrade = "region-entitlement-degrade"
	// ValveOversubscriptionFold: more VMs than banks; VMs were folded into
	// time-shared groups before placement.
	ValveOversubscriptionFold = "oversubscription-fold"
)

func knownProvStage(s string) bool {
	switch s {
	case StageLatCrit, StageVMBanks, StageBatch, StageOverlayBanks,
		StageVMWays, StageStripe, StageTrade, StageRegionAssign:
		return true
	}
	return false
}

func knownElimReason(r string) bool {
	switch r {
	case ElimSecurityDomain, ElimCapacity, ElimWayQuantum,
		ElimRegionBoundary, ElimDistance, ElimDistanceTie,
		ElimTradeNoCompensation, ElimTradeDonorCost:
		return true
	}
	return false
}

func knownProvValve(v string) bool {
	switch v {
	case ValveShrinkLatSizes, ValveBankMinStepUp, ValveWayQuantumRescale,
		ValveVMQuantumRescale, ValveStaticWayRescale, ValveAdaptiveScaleDown,
		ValveOverlayBudgetBump, ValveRegionFallback, ValveRegionDegrade,
		ValveOversubscriptionFold:
		return true
	}
	return false
}

// maxCandidatesPerDecision caps the recorded candidate list of one
// decision. Dense meshes consider hundreds of banks per app; past the cap
// further eliminations only bump Truncated so record size stays bounded.
const maxCandidatesPerDecision = 32

// BankCandidate is one bank (or region, in the region-assign stage) a
// placer considered for a decision. Exactly one of TakenBytes>0 (chosen,
// possibly among others in multi-bank fills) or Eliminated!="" holds.
type BankCandidate struct {
	// Bank is the global bank index — or the region ID in region-assign.
	Bank int `json:"bank"`
	// Dist is the hop distance from the deciding VM's core (region-assign:
	// hops to the region centroid).
	Dist int `json:"dist"`
	// AvailBytes is the bank's free capacity when it was considered.
	AvailBytes float64 `json:"avail_bytes,omitempty"`
	// TakenBytes is how much the placer put on this bank (0 if eliminated).
	TakenBytes float64 `json:"taken_bytes,omitempty"`
	// Eliminated names the constraint that ruled the candidate out (one of
	// the Elim* constants), empty for chosen banks.
	Eliminated string `json:"eliminated,omitempty"`
}

// PlacementDecision is one placed VM or app: what it asked for, what it
// got, and every candidate considered along the way. Emitted once per
// (stage, vm, app) per reconfiguration; app is -1 for VM-level decisions.
type PlacementDecision struct {
	Epoch  int     `json:"epoch"`
	TimeUs float64 `json:"time_us"`
	Design string  `json:"design"`
	Stage  string  `json:"stage"`
	VM     int     `json:"vm"`
	App    int     `json:"app"`
	Name   string  `json:"name,omitempty"`
	// LatencyCritical mirrors the app spec (false for VM-level decisions).
	LatencyCritical bool `json:"lat_crit,omitempty"`
	// Region is the sharded region the decision was made in, -1 when flat.
	Region int `json:"region"`
	// TargetBytes is the size the placer aimed for; PlacedBytes what the
	// candidates actually absorbed (less than target when capacity ran out).
	TargetBytes float64 `json:"target_bytes"`
	PlacedBytes float64 `json:"placed_bytes"`
	// Score is the placer's lookahead signal for this decision — the
	// projected miss rate (misses/cycle) of the granted allocation, or the
	// marginal-rate ordering key, depending on stage.
	Score float64 `json:"score,omitempty"`
	// Candidates lists considered banks in consideration order, capped at
	// maxCandidatesPerDecision; Truncated counts the overflow.
	Candidates []BankCandidate `json:"candidates,omitempty"`
	Truncated  int             `json:"truncated,omitempty"`
}

// PlacementValve records one firing of a fleet-scale fallback valve.
type PlacementValve struct {
	Epoch  int     `json:"epoch"`
	TimeUs float64 `json:"time_us"`
	Design string  `json:"design"`
	Valve  string  `json:"valve"`
	// VM is the affected VM, -1 when the valve is placement-wide.
	VM int `json:"vm"`
	// Attempt is the retry attempt the valve fired on (shrink loops).
	Attempt int `json:"attempt,omitempty"`
	// Scale is the multiplicative relaxation applied, when one exists.
	Scale float64 `json:"scale,omitempty"`
	// Detail is a free-form hint (e.g. the fallback region chosen).
	Detail string `json:"detail,omitempty"`
}

// EmitPlacementDecision appends a placement_decision record.
func (l *EventLog) EmitPlacementDecision(d *PlacementDecision) {
	if l == nil {
		return
	}
	l.emit(TypePlacementDecision, d)
}

// EmitPlacementValve appends a placement_valve record.
func (l *EventLog) EmitPlacementValve(v *PlacementValve) {
	if l == nil {
		return
	}
	l.emit(TypePlacementValve, v)
}

type provKey struct {
	stage string
	vm    int
	app   int
}

// ProvRecorder accumulates one reconfiguration's placement decisions and
// flushes them to the provenance sink in deterministic insertion order.
// Placers call the instrumentation methods mid-placement; the system layer
// owns the epoch lifecycle (StartEpoch → placer runs → Flush).
//
// A nil *ProvRecorder is the disabled sink: every method returns
// immediately, allocation-free, so placers can call unconditionally — but
// hot loops should hoist `on := in.Prov.Enabled()` and skip argument
// computation (hop distances etc.) when off.
//
// ProvRecorder is not safe for concurrent use. The sharded wrapper's
// parallel region placement gives each region goroutine a private
// sub-recorder (Region) and adopts them serially in ascending region order
// (Adopt), which keeps the flushed stream byte-identical to a serial run.
type ProvRecorder struct {
	log    *EventLog
	design string
	names  []string // app id → name, for record labelling
	epoch  int
	timeUs float64

	// Region-scoped sub-recorder state: region is the region ID stamped
	// into records (-1 for flat/parent recorders); mapApp/mapBank translate
	// the inner placer's local IDs to global ones at record time.
	region  int
	mapApp  func(int) int
	mapBank func(int) int

	decisions []PlacementDecision
	idx       map[provKey]int
	valves    []PlacementValve
}

// NewProvRecorder builds an enabled recorder flushing into log. names maps
// global AppID to display name (may be nil). design is the placer name
// stamped into every record.
func NewProvRecorder(log *EventLog, design string, names []string) *ProvRecorder {
	return &ProvRecorder{
		log:    log,
		design: design,
		names:  names,
		region: -1,
		idx:    make(map[provKey]int),
	}
}

// Enabled reports whether instrumentation should record. Nil-safe.
func (r *ProvRecorder) Enabled() bool { return r != nil }

// StartEpoch resets the recorder for a new reconfiguration boundary.
func (r *ProvRecorder) StartEpoch(epoch int, timeUs float64) {
	if r == nil {
		return
	}
	r.epoch = epoch
	r.timeUs = timeUs
	r.reset()
	r.valves = r.valves[:0]
}

// Attempt discards the decisions of a failed placement attempt (the
// shrink-and-retry loops re-place from scratch) while keeping the valve
// trail, so only the successful attempt's decisions survive to Flush.
func (r *ProvRecorder) Attempt() {
	if r == nil {
		return
	}
	r.reset()
}

func (r *ProvRecorder) reset() {
	r.decisions = r.decisions[:0]
	clear(r.idx)
}

// ensure returns the decision record for (stage, vm, app), creating it in
// insertion order on first touch.
func (r *ProvRecorder) ensure(stage string, vm, app int) *PlacementDecision {
	k := provKey{stage: stage, vm: vm, app: app}
	if i, ok := r.idx[k]; ok {
		return &r.decisions[i]
	}
	r.idx[k] = len(r.decisions)
	r.decisions = append(r.decisions, PlacementDecision{
		Epoch:  r.epoch,
		TimeUs: r.timeUs,
		Design: r.design,
		Stage:  stage,
		VM:     vm,
		App:    app,
		Region: r.region,
	})
	return &r.decisions[len(r.decisions)-1]
}

// Decision opens (or updates) the record for one placement decision.
// app is -1 for VM-level decisions. Nil-safe.
func (r *ProvRecorder) Decision(stage string, vm, app int, latCrit bool, targetBytes float64) {
	if r == nil {
		return
	}
	if r.mapApp != nil && app >= 0 {
		app = r.mapApp(app)
	}
	d := r.ensure(stage, vm, app)
	d.LatencyCritical = latCrit
	d.TargetBytes = targetBytes
}

// Score attaches the placer's lookahead/marginal-rate score. Nil-safe.
func (r *ProvRecorder) Score(stage string, vm, app int, score float64) {
	if r == nil {
		return
	}
	if r.mapApp != nil && app >= 0 {
		app = r.mapApp(app)
	}
	r.ensure(stage, vm, app).Score = score
}

// Eliminated records a candidate bank ruled out by reason. Nil-safe.
func (r *ProvRecorder) Eliminated(stage string, vm, app, bank, dist int, avail float64, reason string) {
	if r == nil {
		return
	}
	if r.mapApp != nil && app >= 0 {
		app = r.mapApp(app)
	}
	if r.mapBank != nil {
		bank = r.mapBank(bank)
	}
	d := r.ensure(stage, vm, app)
	if len(d.Candidates) >= maxCandidatesPerDecision {
		d.Truncated++
		return
	}
	d.Candidates = append(d.Candidates, BankCandidate{
		Bank:       bank,
		Dist:       dist,
		AvailBytes: avail,
		Eliminated: reason,
	})
}

// Placed records bytes granted on a chosen candidate bank. Nil-safe.
func (r *ProvRecorder) Placed(stage string, vm, app, bank, dist int, bytes float64) {
	if r == nil {
		return
	}
	if r.mapApp != nil && app >= 0 {
		app = r.mapApp(app)
	}
	if r.mapBank != nil {
		bank = r.mapBank(bank)
	}
	d := r.ensure(stage, vm, app)
	d.PlacedBytes += bytes
	if len(d.Candidates) >= maxCandidatesPerDecision {
		d.Truncated++
		return
	}
	d.Candidates = append(d.Candidates, BankCandidate{
		Bank:       bank,
		Dist:       dist,
		TakenBytes: bytes,
	})
}

// Simple records a candidate-free decision (striping, shared pools): the
// whole mesh is the placement and nothing was eliminated. Nil-safe.
func (r *ProvRecorder) Simple(stage string, vm, app int, latCrit bool, target, placed float64) {
	if r == nil {
		return
	}
	if r.mapApp != nil && app >= 0 {
		app = r.mapApp(app)
	}
	d := r.ensure(stage, vm, app)
	d.LatencyCritical = latCrit
	d.TargetBytes = target
	d.PlacedBytes += placed
}

// Valve records a fallback valve firing. vm is -1 when placement-wide.
// Valves survive Attempt resets: a retry's valve trail is the rationale.
func (r *ProvRecorder) Valve(valve string, vm, attempt int, scale float64, detail string) {
	if r == nil {
		return
	}
	r.valves = append(r.valves, PlacementValve{
		Epoch:   r.epoch,
		TimeUs:  r.timeUs,
		Design:  r.design,
		Valve:   valve,
		VM:      vm,
		Attempt: attempt,
		Scale:   scale,
		Detail:  detail,
	})
}

// Region derives a private sub-recorder for one sharded region. Records
// made through it carry the region ID and are translated to global app and
// bank IDs via mapApp/mapBank at record time. The sub-recorder has no sink
// of its own; the parent absorbs it with Adopt. Nil-safe (returns nil).
func (r *ProvRecorder) Region(region int, mapApp, mapBank func(int) int) *ProvRecorder {
	if r == nil {
		return nil
	}
	return &ProvRecorder{
		design:  r.design,
		names:   r.names,
		epoch:   r.epoch,
		timeUs:  r.timeUs,
		region:  region,
		mapApp:  mapApp,
		mapBank: mapBank,
		idx:     make(map[provKey]int),
	}
}

// Adopt appends a region sub-recorder's decisions and valves. Callers must
// adopt regions in ascending region order so parallel placement flushes a
// byte-identical stream to serial placement. Nil-safe on both sides.
func (r *ProvRecorder) Adopt(sub *ProvRecorder) {
	if r == nil || sub == nil {
		return
	}
	for i := range sub.decisions {
		d := &sub.decisions[i]
		k := provKey{stage: d.Stage, vm: d.VM, app: d.App}
		r.idx[k] = len(r.decisions)
		r.decisions = append(r.decisions, *d)
	}
	r.valves = append(r.valves, sub.valves...)
}

// Flush labels, emits, and clears the accumulated records: valves first
// (the preconditions), then decisions, both in insertion order.
func (r *ProvRecorder) Flush() {
	if r == nil {
		return
	}
	for i := range r.valves {
		r.log.EmitPlacementValve(&r.valves[i])
	}
	for i := range r.decisions {
		d := &r.decisions[i]
		if d.App >= 0 && d.App < len(r.names) {
			d.Name = r.names[d.App]
		}
		r.log.EmitPlacementDecision(d)
	}
	r.valves = r.valves[:0]
	r.reset()
}
