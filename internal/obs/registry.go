// Package obs is the simulator's observability layer: a typed metrics
// registry (counters, gauges, histograms), a structured JSONL decision log
// for epoch-level controller actions, a Chrome trace-event exporter
// loadable in Perfetto or chrome://tracing, and wall-clock phase timers
// (Spans).
//
// The whole package is nil-safe: a nil *Registry hands out nil metrics, and
// every metric, event-log, trace, and span method is a no-op on a nil
// receiver. Instrumented hot paths therefore cost one nil check per update
// when observability is disabled — BenchmarkObsOverhead and
// TestAllocGuardSpans guard the bound.
//
// Like the rest of the simulator, the deterministic sinks (Registry,
// EventLog, Trace) are single-threaded: one run owns its sinks. Runs on
// different goroutines must use separate sinks; the parallel experiment
// engine gives each worker cell a private Registry, EventLog, and Trace,
// then folds them into the user-visible ones *in cell order* — never in
// completion order — via Registry.Merge, EventLog.AppendJSONL, and
// Trace.Merge. Cell-order merging is what makes a parallel run's sink
// output byte-identical to a serial run's: counter sums and histogram bins
// commute, but gauge last-write-wins, event sequence numbers, and trace
// lane numbering all depend on merge order, so the order is pinned.
//
// Spans is the one deliberate exception to both rules: it measures host
// wall-clock time (Go's monotonic clock via time.Now/time.Since, so
// timings are immune to wall-clock steps), which is inherently
// nondeterministic, so it is mutex-protected, shared across workers, and
// kept out of the deterministic sinks unless explicitly exported
// (Spans.WriteTrace).
//
// The subpackages render and serve this package's snapshots: obs/prom
// writes Prometheus text exposition format, obs/statusz serves it over
// HTTP together with live sweep progress.
package obs

import (
	"fmt"
	"io"
	"sort"
)

// Kind distinguishes metric types in snapshots.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Counter is a monotonically increasing event count. The zero of a nil
// Counter is usable: all methods no-op, so disabled instrumentation costs
// one nil check.
type Counter struct {
	name string
	n    uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	name string
	v    float64
	set  bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
		g.set = true
	}
}

// Add adjusts the current value by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
		g.set = true
	}
}

// Value returns the last value set (0 on nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into nbins equal-width bins over [lo, hi].
// Out-of-range observations clamp into the first or last bin (the same
// convention as stats.Histogram), so Count always equals the bin sum.
type Histogram struct {
	name   string
	lo, hi float64
	bins   []uint64
	count  uint64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	width := (h.hi - h.lo) / float64(len(h.bins))
	i := int((x - h.lo) / width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.count++
	h.sum += x
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation (0 with no observations or on nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bins returns a copy of the bin counts (nil on nil).
func (h *Histogram) Bins() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.bins))
	copy(out, h.bins)
	return out
}

// Registry owns a run's metrics. A nil *Registry is the disabled state: it
// hands out nil metrics whose methods compile to no-ops.
type Registry struct {
	byName map[string]any
	order  []string
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// Enabled reports whether the registry collects anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the counter registered under name, creating it on first
// use. It panics if name is already registered as a different metric type
// (a programming error, like every misuse in this simulator). A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as a %T", name, m))
		}
		return c
	}
	c := &Counter{name: name}
	r.register(name, c)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as a %T", name, m))
		}
		return g
	}
	g := &Gauge{name: name}
	r.register(name, g)
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use with nbins equal-width bins over [lo, hi]. Re-registration with
// different bounds panics: two call sites disagreeing about a metric's
// shape is a bug.
func (r *Registry) Histogram(name string, lo, hi float64, nbins int) *Histogram {
	if r == nil {
		return nil
	}
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as a %T", name, m))
		}
		if h.lo != lo || h.hi != hi || len(h.bins) != nbins {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different shape", name))
		}
		return h
	}
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("obs: invalid histogram %q shape [%g, %g)/%d", name, lo, hi, nbins))
	}
	h := &Histogram{name: name, lo: lo, hi: hi, bins: make([]uint64, nbins)}
	r.register(name, h)
	return h
}

func (r *Registry) register(name string, m any) {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.byName[name] = m
	r.order = append(r.order, name)
}

// Merge folds src's metrics into r: counters and histogram bins add;
// gauges take src's value when src ever set one, so merging worker
// registries in cell order gives "last write wins" the same meaning it has
// in a serial run. Metrics missing from r are created (in src's
// registration order, keeping name registration deterministic); histograms
// present in both must agree on shape, enforced by the same panic as
// re-registration. Merging a nil src, or into a nil r, is a no-op.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for _, name := range src.order {
		switch m := src.byName[name].(type) {
		case *Counter:
			r.Counter(name).Add(m.n)
		case *Gauge:
			if m.set {
				r.Gauge(name).Set(m.v)
			} else {
				r.Gauge(name) // register the name without clobbering a value
			}
		case *Histogram:
			h := r.Histogram(name, m.lo, m.hi, len(m.bins))
			for i, b := range m.bins {
				h.bins[i] += b
			}
			h.count += m.count
			h.sum += m.sum
		}
	}
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	Name  string
	Kind  Kind
	Value float64  // counter count or gauge value; histogram mean
	Count uint64   // histogram observation count
	Sum   float64  // histogram observation sum
	Lo    float64  // histogram lower bound
	Hi    float64  // histogram upper bound
	Bins  []uint64 // histogram bin counts
	// Help and Labels are optional exposition metadata consumed by the
	// prom writer (HELP line; {k="v"} label pairs on every sample). The
	// Registry leaves them empty; synthetic snapshot producers set them.
	Help   string
	Labels map[string]string
}

// Snapshot returns every metric's current state, sorted by name.
// A nil registry snapshots to nil.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	out := make([]MetricSnapshot, 0, len(names))
	for _, name := range names {
		switch m := r.byName[name].(type) {
		case *Counter:
			out = append(out, MetricSnapshot{Name: name, Kind: KindCounter, Value: float64(m.n)})
		case *Gauge:
			out = append(out, MetricSnapshot{Name: name, Kind: KindGauge, Value: m.v})
		case *Histogram:
			out = append(out, MetricSnapshot{
				Name: name, Kind: KindHistogram,
				Value: m.Mean(), Count: m.count, Sum: m.sum,
				Lo: m.lo, Hi: m.hi, Bins: m.Bins(),
			})
		}
	}
	return out
}

// WriteText dumps every metric as one "name kind value" line, sorted by
// name — the -metrics output of the CLIs. A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		var err error
		switch s.Kind {
		case KindHistogram:
			_, err = fmt.Fprintf(w, "%s histogram count=%d sum=%g mean=%g\n", s.Name, s.Count, s.Sum, s.Value)
		default:
			_, err = fmt.Fprintf(w, "%s %s %g\n", s.Name, s.Kind, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
