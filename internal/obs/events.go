package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is stamped into every decision-log record as "v". Bump it
// whenever a payload struct changes incompatibly; ValidateEvent rejects
// records from other versions.
//
// v2: epoch and driver_epoch records gained a monotonic simulated
// timestamp (time_us), epoch records gained worst_lat_norm, and the
// slo_violation and reconfig_churn attribution records were added.
//
// v3: the placement provenance records were added (placement_decision and
// placement_valve, see provenance.go) — the per-VM/app "why did this land
// here" rationale the provenance sink (-provenance) emits.
const SchemaVersion = 3

// Event types, one per payload struct. Every JSONL record is an envelope
//
//	{"v":3, "seq":N, "type":"<type>", "data":{...}}
//
// where data's shape is fixed by the type (see the payload structs below
// and the "Observability" section of README.md).
const (
	TypeRunStart          = "run_start"
	TypeEpoch             = "epoch"
	TypeSLOViolation      = "slo_violation"
	TypeReconfigChurn     = "reconfig_churn"
	TypeDriverEpoch       = "driver_epoch"
	TypeRunEnd            = "run_end"
	TypePlacementDecision = "placement_decision"
	TypePlacementValve    = "placement_valve"
)

// AppInfo describes one application in a run_start record.
type AppInfo struct {
	App             int     `json:"app"`
	Name            string  `json:"name"`
	VM              int     `json:"vm"`
	Core            int     `json:"core"`
	LatencyCritical bool    `json:"lat_crit"`
	DeadlineCycles  float64 `json:"deadline_cycles,omitempty"`
}

// RunStart opens a run's records: design, protocol, machine, applications.
type RunStart struct {
	Design    string    `json:"design"`
	Epochs    int       `json:"epochs"`
	Warmup    int       `json:"warmup"`
	Banks     int       `json:"banks"`
	BankBytes float64   `json:"bank_bytes"`
	Apps      []AppInfo `json:"apps"`
}

// ControllerAction is one latency-critical application's feedback decision
// at a reconfiguration: the new allocation target, its delta against the
// previous reconfiguration, and the classified action. LatNorm is the
// epoch's mean request latency divided by the deadline (the Fig. 4 signal);
// DeadlineViolated flags LatNorm > 1.
type ControllerAction struct {
	App              int     `json:"app"`
	Name             string  `json:"name"`
	AllocBytes       float64 `json:"alloc_bytes"`
	DeltaBytes       float64 `json:"delta_bytes"`
	Action           string  `json:"action"` // grow | shrink | hold | panic | fixed
	LatNorm          float64 `json:"lat_norm,omitempty"`
	DeadlineViolated bool    `json:"deadline_violated,omitempty"`
}

// PlacementChange is one application's placement at a reconfiguration:
// how many banks it spans, its total capacity, and the fraction of its
// cached data the change invalidated (the Sec. IV-A coherence walk).
type PlacementChange struct {
	App           int     `json:"app"`
	Name          string  `json:"name"`
	Banks         int     `json:"banks"`
	TotalBytes    float64 `json:"total_bytes"`
	MovedFraction float64 `json:"moved_fraction"`
}

// Epoch is one analytic-model epoch's decisions and observables. Actions
// and Placement are present only on epochs where the placer ran. TimeUs
// is the epoch's start on the run's simulated clock in microseconds
// (epoch × EpochSeconds) — monotonic within a run and deterministic, so
// reports can align epoch records with trace timelines without host
// wall-clock leaking into the log. WorstLatNorm is the epoch's worst
// latency-critical mean latency over its deadline (0 with no samples).
type Epoch struct {
	Epoch         int                `json:"epoch"`
	TimeUs        float64            `json:"time_us"`
	Reconfigured  bool               `json:"reconfigured"`
	Actions       []ControllerAction `json:"actions,omitempty"`
	Placement     []PlacementChange  `json:"placement,omitempty"`
	Vulnerability float64            `json:"vulnerability"`
	WorstLatNorm  float64            `json:"worst_lat_norm"`
}

// LatencyBreakdown splits one application's mean request latency into the
// model's additive components, all in core cycles per request: the
// out-of-cache base cost, LLC bank access, NoC traversal to the
// placement's banks, main-memory misses, and (for latency-critical
// applications) time spent queued behind other requests.
type LatencyBreakdown struct {
	BaseCycles  float64 `json:"base_cycles"`
	BankCycles  float64 `json:"bank_cycles"`
	NoCCycles   float64 `json:"noc_cycles"`
	MemCycles   float64 `json:"mem_cycles"`
	QueueCycles float64 `json:"queue_cycles"`
}

// SLOViolation attributes one latency-critical application's blown
// deadline in one epoch: how far over (LatNorm, negative SlackCycles),
// what the allocation was, and which latency component dominated —
// the "why" behind a point on the SLO timeline. Dominant names the
// largest memory-system component (bank | noc | mem | queue); the base
// CPI is reported but never dominates, since no cache design can
// reclaim it.
type SLOViolation struct {
	Epoch       int              `json:"epoch"`
	TimeUs      float64          `json:"time_us"`
	App         int              `json:"app"`
	Name        string           `json:"name"`
	Design      string           `json:"design"`
	LatNorm     float64          `json:"lat_norm"`
	SlackCycles float64          `json:"slack_cycles"`
	AllocBytes  float64          `json:"alloc_bytes"`
	Breakdown   LatencyBreakdown `json:"breakdown"`
	Dominant    string           `json:"dominant"` // bank | noc | mem | queue
}

// ReconfigChurn summarizes one reconfiguration's data movement: the worst
// per-app moved fraction, the total bytes whose bank home changed (and
// the cache lines the Sec. IV-A coherence walk invalidated for them), how
// many applications moved at all, and why the placer ran.
type ReconfigChurn struct {
	Epoch            int     `json:"epoch"`
	TimeUs           float64 `json:"time_us"`
	Cause            string  `json:"cause"` // initial | periodic | delayed
	MaxMovedFraction float64 `json:"max_moved_fraction"`
	MovedBytes       float64 `json:"moved_bytes"`
	InvalidatedLines float64 `json:"invalidated_lines"`
	AppsMoved        int     `json:"apps_moved"`
}

// VTBInstall records one virtual cache's descriptor install in the
// detailed driver: banks spanned, bytes granted, and how many banks got a
// way mask for the app (the Intel CAT configuration).
type VTBInstall struct {
	App         int     `json:"app"`
	Name        string  `json:"name"`
	Banks       int     `json:"banks"`
	TotalBytes  float64 `json:"total_bytes"`
	MaskedBanks int     `json:"masked_banks"`
}

// UMONSnapshot is one application's profiled miss-ratio curve: MissRatio[i]
// is the miss ratio at a capacity of i × UnitBytes.
type UMONSnapshot struct {
	App       int       `json:"app"`
	Name      string    `json:"name"`
	UnitBytes float64   `json:"unit_bytes"`
	MissRatio []float64 `json:"miss_ratio"`
}

// DriverAppStats is one application's measured behaviour in a driver epoch.
type DriverAppStats struct {
	App          int     `json:"app"`
	Name         string  `json:"name"`
	Accesses     uint64  `json:"accesses"`
	LLCHits      uint64  `json:"llc_hits"`
	MemLoads     uint64  `json:"mem_loads"`
	LLCMissRatio float64 `json:"llc_miss_ratio"`
	AvgHops      float64 `json:"avg_hops"`
}

// DriverEpoch is one detailed (trace-driven) epoch: the placement installed
// into the VTB and way masks, the coherence walk's cost, the UMON-measured
// curves the placement was computed from, and the measured outcome. TimeUs
// is the epoch's start on the driver's simulated clock in microseconds,
// with the same monotonicity contract as Epoch.TimeUs.
type DriverEpoch struct {
	Epoch            int              `json:"epoch"`
	TimeUs           float64          `json:"time_us"`
	InvalidatedLines int              `json:"invalidated_lines"`
	Installs         []VTBInstall     `json:"installs"`
	UMON             []UMONSnapshot   `json:"umon,omitempty"`
	Apps             []DriverAppStats `json:"apps"`
}

// RunEnd closes a run's records with its headline summary.
type RunEnd struct {
	Design               string  `json:"design"`
	WorstNormTail        float64 `json:"worst_norm_tail"`
	BatchWeightedSpeedup float64 `json:"batch_weighted_speedup"`
	Vulnerability        float64 `json:"vulnerability"`
	EnergyNJ             float64 `json:"energy_nj,omitempty"`
}

// EventLog writes the structured decision log as JSONL, one envelope per
// line. A nil *EventLog drops everything; the emitting code needs no
// enabled-checks beyond skipping expensive payload assembly.
type EventLog struct {
	enc *json.Encoder
	seq uint64
	err error
}

// NewEventLog returns a log writing to w.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{enc: json.NewEncoder(w)}
}

// Enabled reports whether emitted records go anywhere. Callers use it to
// skip assembling payloads for a disabled log.
func (l *EventLog) Enabled() bool { return l != nil }

// Err returns the first write error, if any. Writes after an error are
// dropped.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	return l.err
}

type envelope struct {
	V    int             `json:"v"`
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

func (l *EventLog) emit(typ string, data any) {
	if l == nil || l.err != nil {
		return
	}
	raw, err := json.Marshal(data)
	if err != nil {
		l.err = err
		return
	}
	l.seq++
	if err := l.enc.Encode(envelope{V: SchemaVersion, Seq: l.seq, Type: typ, Data: raw}); err != nil {
		l.err = err
	}
}

// AppendJSONL replays a JSONL log emitted by another EventLog into l,
// renumbering each record's seq to continue l's sequence. The parallel
// experiment engine points each worker cell's EventLog at a private buffer
// and appends the buffers here in cell order, which reproduces the exact
// bytes a serial run would have written (payloads are carried as raw JSON,
// so nothing is re-marshalled). Appending to a nil log is a no-op; a
// malformed or wrong-version line poisons the log like a write error.
func (l *EventLog) AppendJSONL(data []byte) error {
	if l == nil || l.err != nil {
		return l.Err()
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil {
			l.err = fmt.Errorf("obs: appending event log: %w", err)
			return l.err
		}
		if env.V != SchemaVersion {
			l.err = fmt.Errorf("obs: appending event log: schema version %d, want %d", env.V, SchemaVersion)
			return l.err
		}
		l.seq++
		env.Seq = l.seq
		if err := l.enc.Encode(env); err != nil {
			l.err = err
			return l.err
		}
	}
	return nil
}

// EmitRunStart writes a run_start record.
func (l *EventLog) EmitRunStart(r RunStart) { l.emit(TypeRunStart, r) }

// EmitEpoch writes an epoch record.
func (l *EventLog) EmitEpoch(e Epoch) { l.emit(TypeEpoch, e) }

// EmitSLOViolation writes a slo_violation record.
func (l *EventLog) EmitSLOViolation(v SLOViolation) { l.emit(TypeSLOViolation, v) }

// EmitReconfigChurn writes a reconfig_churn record.
func (l *EventLog) EmitReconfigChurn(c ReconfigChurn) { l.emit(TypeReconfigChurn, c) }

// EmitDriverEpoch writes a driver_epoch record.
func (l *EventLog) EmitDriverEpoch(e DriverEpoch) { l.emit(TypeDriverEpoch, e) }

// EmitRunEnd writes a run_end record.
func (l *EventLog) EmitRunEnd(r RunEnd) { l.emit(TypeRunEnd, r) }

// ValidateEvent checks one JSONL line against the documented schema and
// returns the record's type. It rejects unknown envelope or payload fields
// (strict decoding), wrong schema versions, unknown types, and records
// violating basic semantic invariants. Tests run every emitted line
// through it, so the documented schema and the emitted bytes cannot drift
// apart silently.
func ValidateEvent(line []byte) (string, error) {
	var env envelope
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return "", fmt.Errorf("obs: bad envelope: %w", err)
	}
	if env.V != SchemaVersion {
		return "", fmt.Errorf("obs: schema version %d, want %d", env.V, SchemaVersion)
	}
	if env.Seq == 0 {
		return "", fmt.Errorf("obs: missing or zero seq")
	}
	strict := func(into any) error {
		d := json.NewDecoder(bytes.NewReader(env.Data))
		d.DisallowUnknownFields()
		return d.Decode(into)
	}
	switch env.Type {
	case TypeRunStart:
		var r RunStart
		if err := strict(&r); err != nil {
			return env.Type, fmt.Errorf("obs: bad run_start: %w", err)
		}
		if r.Design == "" || r.Epochs <= 0 || r.Banks <= 0 || len(r.Apps) == 0 {
			return env.Type, fmt.Errorf("obs: run_start missing design/epochs/banks/apps: %+v", r)
		}
	case TypeEpoch:
		var e Epoch
		if err := strict(&e); err != nil {
			return env.Type, fmt.Errorf("obs: bad epoch: %w", err)
		}
		if e.Epoch < 0 {
			return env.Type, fmt.Errorf("obs: negative epoch %d", e.Epoch)
		}
		if e.TimeUs < 0 || e.TimeUs != e.TimeUs {
			return env.Type, fmt.Errorf("obs: epoch %d has invalid time_us %v", e.Epoch, e.TimeUs)
		}
		if !e.Reconfigured && (len(e.Actions) > 0 || len(e.Placement) > 0) {
			return env.Type, fmt.Errorf("obs: epoch %d has decisions without a reconfiguration", e.Epoch)
		}
		for _, a := range e.Actions {
			switch a.Action {
			case "grow", "shrink", "hold", "panic", "fixed":
			default:
				return env.Type, fmt.Errorf("obs: epoch %d app %d has unknown action %q", e.Epoch, a.App, a.Action)
			}
		}
	case TypeSLOViolation:
		var v SLOViolation
		if err := strict(&v); err != nil {
			return env.Type, fmt.Errorf("obs: bad slo_violation: %w", err)
		}
		if v.Epoch < 0 || v.TimeUs < 0 || v.Name == "" || v.Design == "" {
			return env.Type, fmt.Errorf("obs: slo_violation malformed: %+v", v)
		}
		if !(v.LatNorm > 1) {
			return env.Type, fmt.Errorf("obs: slo_violation epoch %d app %d with lat_norm %v not over deadline", v.Epoch, v.App, v.LatNorm)
		}
		switch v.Dominant {
		case "bank", "noc", "mem", "queue":
		default:
			return env.Type, fmt.Errorf("obs: slo_violation epoch %d app %d has unknown dominant component %q", v.Epoch, v.App, v.Dominant)
		}
	case TypeReconfigChurn:
		var c ReconfigChurn
		if err := strict(&c); err != nil {
			return env.Type, fmt.Errorf("obs: bad reconfig_churn: %w", err)
		}
		if c.Epoch < 0 || c.TimeUs < 0 || c.MaxMovedFraction < 0 || c.MaxMovedFraction > 1 ||
			c.MovedBytes < 0 || c.InvalidatedLines < 0 || c.AppsMoved < 0 {
			return env.Type, fmt.Errorf("obs: reconfig_churn malformed: %+v", c)
		}
		switch c.Cause {
		case "initial", "periodic", "delayed":
		default:
			return env.Type, fmt.Errorf("obs: reconfig_churn epoch %d has unknown cause %q", c.Epoch, c.Cause)
		}
	case TypeDriverEpoch:
		var e DriverEpoch
		if err := strict(&e); err != nil {
			return env.Type, fmt.Errorf("obs: bad driver_epoch: %w", err)
		}
		if e.Epoch < 0 || e.TimeUs < 0 || e.InvalidatedLines < 0 || len(e.Apps) == 0 {
			return env.Type, fmt.Errorf("obs: driver_epoch %d malformed", e.Epoch)
		}
		for _, u := range e.UMON {
			if u.UnitBytes <= 0 || len(u.MissRatio) == 0 {
				return env.Type, fmt.Errorf("obs: driver_epoch %d app %d has empty UMON snapshot", e.Epoch, u.App)
			}
		}
	case TypeRunEnd:
		var r RunEnd
		if err := strict(&r); err != nil {
			return env.Type, fmt.Errorf("obs: bad run_end: %w", err)
		}
		if r.Design == "" {
			return env.Type, fmt.Errorf("obs: run_end missing design")
		}
	case TypePlacementDecision:
		var d PlacementDecision
		if err := strict(&d); err != nil {
			return env.Type, fmt.Errorf("obs: bad placement_decision: %w", err)
		}
		if d.Epoch < 0 || d.Design == "" || d.VM < 0 || d.App < -1 || d.Truncated < 0 {
			return env.Type, fmt.Errorf("obs: placement_decision malformed: %+v", d)
		}
		if !knownProvStage(d.Stage) {
			return env.Type, fmt.Errorf("obs: placement_decision epoch %d vm %d has unknown stage %q", d.Epoch, d.VM, d.Stage)
		}
		for _, c := range d.Candidates {
			if c.Bank < 0 || c.Dist < 0 {
				return env.Type, fmt.Errorf("obs: placement_decision epoch %d vm %d has malformed candidate %+v", d.Epoch, d.VM, c)
			}
			if c.Eliminated == "" && c.TakenBytes <= 0 {
				return env.Type, fmt.Errorf("obs: placement_decision epoch %d vm %d candidate bank %d neither taken nor eliminated", d.Epoch, d.VM, c.Bank)
			}
			if c.Eliminated != "" && !knownElimReason(c.Eliminated) {
				return env.Type, fmt.Errorf("obs: placement_decision epoch %d vm %d has unknown elimination reason %q", d.Epoch, d.VM, c.Eliminated)
			}
		}
	case TypePlacementValve:
		var v PlacementValve
		if err := strict(&v); err != nil {
			return env.Type, fmt.Errorf("obs: bad placement_valve: %w", err)
		}
		if v.Epoch < 0 || v.Design == "" || v.VM < -1 || v.Attempt < 0 {
			return env.Type, fmt.Errorf("obs: placement_valve malformed: %+v", v)
		}
		if !knownProvValve(v.Valve) {
			return env.Type, fmt.Errorf("obs: placement_valve epoch %d has unknown valve %q", v.Epoch, v.Valve)
		}
	default:
		return env.Type, fmt.Errorf("obs: unknown event type %q", env.Type)
	}
	return env.Type, nil
}

// ValidateEventLog runs ValidateEvent over every line of a JSONL log and
// returns the count of records per type. Blank lines are skipped.
func ValidateEventLog(data []byte) (map[string]int, error) {
	counts := make(map[string]int)
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		typ, err := ValidateEvent(line)
		if err != nil {
			return counts, fmt.Errorf("line %d: %w", i+1, err)
		}
		counts[typ]++
	}
	return counts, nil
}

// Event is one decoded event-log record: the envelope's sequence number
// and type, with the payload left raw for the consumer to unmarshal into
// the matching struct (RunStart, Epoch, SLOViolation, ...).
type Event struct {
	Seq  uint64
	Type string
	Data json.RawMessage
}

// DecodeEvents streams a JSONL event log record-at-a-time, calling fn for
// every decoded envelope. Unlike DecodeEventLog it never materializes the
// whole log, so cmd/report can walk multi-GB event files in constant
// memory. Each Event's Data aliases a per-line buffer that is NOT reused,
// so fn may retain it. It rejects unknown schema versions and malformed
// lines but does not re-validate payloads; run ValidateEventLog first when
// provenance is untrusted. A non-nil error from fn aborts the walk and is
// returned verbatim.
func DecodeEvents(r io.Reader, fn func(Event) error) error {
	// bufio.Reader rather than bufio.Scanner: provenance records carry
	// candidate lists that can exceed Scanner's 64 KiB token cap.
	br := bufio.NewReaderSize(r, 1<<16)
	for i := 1; ; i++ {
		line, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var env envelope
			if jerr := json.Unmarshal(line, &env); jerr != nil {
				return fmt.Errorf("obs: event log line %d: %w", i, jerr)
			}
			if env.V != SchemaVersion {
				return fmt.Errorf("obs: event log line %d has schema v%d; this build reads v%d", i, env.V, SchemaVersion)
			}
			if env.Type == "" {
				return fmt.Errorf("obs: event log line %d has no type", i)
			}
			if ferr := fn(Event{Seq: env.Seq, Type: env.Type, Data: env.Data}); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("obs: event log line %d: %w", i, err)
		}
	}
}

// DecodeEventLog parses a JSONL event log into decoded envelopes for
// offline consumers. Small-log convenience wrapper around DecodeEvents;
// prefer DecodeEvents for anything that might not fit in memory.
func DecodeEventLog(data []byte) ([]Event, error) {
	var out []Event
	err := DecodeEvents(bytes.NewReader(data), func(e Event) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
