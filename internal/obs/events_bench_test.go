package obs

import (
	"bytes"
	"testing"
)

// benchProvLog synthesizes a realistic provenance log: n reconfigurations
// of an 8-VM workload, each VM decision carrying a candidate list with
// eliminations — the record shape that makes provenance logs the largest
// of the five sinks on long runs.
func benchProvLog(n int) []byte {
	var buf bytes.Buffer
	r := NewProvRecorder(NewEventLog(&buf), "Jumanji",
		[]string{"xapian", "mcf", "omnetpp", "lbm", "milc", "gcc", "x264", "moses"})
	for epoch := 0; epoch < n; epoch++ {
		r.StartEpoch(epoch, float64(epoch)*1e5)
		for vm := 0; vm < 8; vm++ {
			r.Decision(StageVMBanks, vm, -1, false, 4<<20)
			for b := 0; b < 6; b++ {
				r.Eliminated(StageVMBanks, vm, -1, b, b+1, 0, ElimCapacity)
			}
			r.Placed(StageVMBanks, vm, -1, 6, 1, 4<<20)
			r.Score(StageVMBanks, vm, -1, 0.25)
		}
		r.Valve(ValveShrinkLatSizes, -1, 0, 0.9, "lat-crit demand over capacity")
		r.Flush()
	}
	return buf.Bytes()
}

// BenchmarkDecodeEvents measures the streaming JSONL decoder that
// cmd/report and the statusz /explain pipeline sit on. The streaming case
// is the one that matters operationally: DecodeEvents holds one line at a
// time, so decode speed — not memory — is the only limit on how large a
// provenance log the report renderer can consume. DecodeEventLog is the
// convenience wrapper that materializes every envelope; compare the two to
// see what the slice build adds.
//
//	go test -bench=DecodeEvents -benchmem ./internal/obs/
func BenchmarkDecodeEvents(b *testing.B) {
	log := benchProvLog(64)
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(int64(len(log)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			err := DecodeEvents(bytes.NewReader(log), func(Event) error {
				n++
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("decoded no events")
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		b.SetBytes(int64(len(log)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			evs, err := DecodeEventLog(log)
			if err != nil {
				b.Fatal(err)
			}
			if len(evs) == 0 {
				b.Fatal("decoded no events")
			}
		}
	})
}
