package obs

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"jumanji/internal/obs/tsdb"
)

// populate writes a representative mix of metrics, events, and trace
// activity into a cell, the way a worker run would.
func populate(c *Cell) {
	c.Metrics.Counter("system.epochs").Add(40)
	c.Metrics.Gauge("run.tail").Set(1.25)
	c.Metrics.Gauge("run.never_set") // registered but unset: merge must not clobber
	h := c.Metrics.Histogram("lat", 0, 2, 10)
	h.Observe(0.5)
	h.Observe(1.9)
	h.Observe(7.0) // clamps to last bin

	c.Events.EmitRunStart(RunStart{
		Design: "jumanji", Epochs: 4, Warmup: 1, Banks: 36, BankBytes: 768 * 1024,
		Apps: []AppInfo{{App: 0, Name: "xapian", LatencyCritical: true}},
	})
	c.Events.EmitRunEnd(RunEnd{Design: "jumanji", WorstNormTail: 1.02, BatchWeightedSpeedup: 1.1})

	c.TS.Append("system.epochs", 0, 1)
	c.TS.Append("system.epochs", 1, 1)
	c.TS.Append("system.lat_norm.p95", 1, 0.9)

	lane := c.Trace.Lane("jumanji")
	c.Trace.Span(lane, 0, "epoch", "epoch", 0, 100000, map[string]any{"epoch": 0, "vulnerability": 0.125})
	c.Trace.Instant(lane, 0, "reconfigure", 100000, map[string]any{"moved_fraction_max": 0.2})
	c.Trace.Counter(lane, "alloc_mb", 0, map[string]float64{"xapian": 2.5})
}

// mergeAll folds a cell into fresh user sinks and renders everything to
// bytes, the same way the CLIs do.
func mergeAll(t *testing.T, c *Cell) (metrics, events, trace, ts string) {
	t.Helper()
	reg := NewRegistry()
	var evBuf, trBuf bytes.Buffer
	ev := NewEventLog(&evBuf)
	tr := NewTrace(&trBuf)
	db := tsdb.New(64)
	if err := c.MergeInto(reg, ev, tr, db, nil); err != nil {
		t.Fatal(err)
	}
	var regBuf bytes.Buffer
	if err := reg.WriteText(&regBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var tsBuf bytes.Buffer
	if err := db.Write(&tsBuf); err != nil {
		t.Fatal(err)
	}
	return regBuf.String(), evBuf.String(), trBuf.String(), tsBuf.String()
}

// The journal's core guarantee: a cell snapshotted, gob-encoded (as the
// journal stores it), decoded, and rebuilt merges byte-identically to the
// original cell.
func TestCellStateRoundTripByteIdentical(t *testing.T) {
	orig := NewCell(NewRegistry(), NewEventLog(&bytes.Buffer{}), NewTrace(nil), tsdb.New(64), NewEventLog(&bytes.Buffer{}))
	populate(orig)

	st, err := orig.State()
	if err != nil {
		t.Fatal(err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded CellState
	if err := gob.NewDecoder(bytes.NewReader(payload.Bytes())).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	replayed, err := CellFromState(decoded)
	if err != nil {
		t.Fatal(err)
	}

	m1, e1, t1, s1 := mergeAll(t, orig)
	m2, e2, t2, s2 := mergeAll(t, replayed)
	if m1 != m2 {
		t.Errorf("metrics diverge:\noriginal:\n%s\nreplayed:\n%s", m1, m2)
	}
	if e1 != e2 {
		t.Errorf("events diverge:\noriginal:\n%s\nreplayed:\n%s", e1, e2)
	}
	if t1 != t2 {
		t.Errorf("trace diverges:\noriginal:\n%s\nreplayed:\n%s", t1, t2)
	}
	if s1 != s2 {
		t.Errorf("tsdb diverges:\noriginal:\n%s\nreplayed:\n%s", s1, s2)
	}
	if m1 == "" || e1 == "" {
		t.Fatal("test exercised empty sinks")
	}
	if replayed.TS.Lookup("system.epochs").Len() != 2 {
		t.Fatal("replayed tsdb lost samples")
	}
}

// A replayed cell must preserve exact counter integers (beyond float64
// precision) and the gauge set flag.
func TestCellStateLossless(t *testing.T) {
	c := NewCell(NewRegistry(), nil, nil, nil, nil)
	const big = uint64(1)<<60 + 3
	c.Metrics.Counter("huge").Add(big)
	c.Metrics.Gauge("unset")

	st, err := c.State()
	if err != nil {
		t.Fatal(err)
	}
	back, err := CellFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Metrics.Counter("huge").Value(); got != big {
		t.Fatalf("counter = %d, want %d", got, big)
	}

	user := NewRegistry()
	user.Gauge("unset").Set(42)
	user.Merge(back.Metrics)
	if got := user.Gauge("unset").Value(); got != 42 {
		t.Fatalf("unset replayed gauge clobbered user value: %g", got)
	}
}

func TestCellStateDisabledSinks(t *testing.T) {
	// A fully disabled cell round-trips to a cell that merges as a no-op.
	c := NewCell(nil, nil, nil, nil, nil)
	st, err := c.State()
	if err != nil {
		t.Fatal(err)
	}
	back, err := CellFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics != nil || back.Trace != nil || back.eventsBuf != nil || back.TS != nil {
		t.Fatal("disabled sinks resurrected")
	}
	if err := back.MergeInto(nil, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	var nilCell *Cell
	if _, err := nilCell.State(); err != nil {
		t.Fatal(err)
	}
}

func TestCellStateRejectsCorruptMetrics(t *testing.T) {
	if _, err := CellFromState(CellState{Metrics: []MetricState{{Name: "h", Kind: KindHistogram}}}); err == nil {
		t.Fatal("histogram with no bins must be rejected")
	}
	if _, err := CellFromState(CellState{Metrics: []MetricState{{Name: "x", Kind: Kind(99)}}}); err == nil {
		t.Fatal("unknown metric kind must be rejected")
	}
	if _, err := CellFromState(CellState{Trace: []byte("not json")}); err == nil {
		t.Fatal("corrupt trace bytes must be rejected")
	}
	if _, err := CellFromState(CellState{TS: []byte("not json")}); err == nil {
		t.Fatal("corrupt tsdb bytes must be rejected")
	}
}

func TestSpansActiveTracking(t *testing.T) {
	s := NewSpans()
	if got := s.Active(); got != nil {
		t.Fatalf("Active before TrackActive = %v", got)
	}
	// Spans started before tracking are invisible, by design.
	pre := s.Start("before")
	s.TrackActive()

	a := s.Start("system.epoch_model")
	time.Sleep(time.Millisecond)
	b := s.Start("core.place")
	act := s.Active()
	if len(act) != 2 {
		t.Fatalf("Active = %v, want 2 spans", act)
	}
	if act[0].Name != "system.epoch_model" || act[1].Name != "core.place" {
		t.Fatalf("Active order = %v, want oldest first", act)
	}
	b.Stop()
	a.Stop()
	pre.Stop()
	if act := s.Active(); len(act) != 0 {
		t.Fatalf("Active after Stop = %v", act)
	}

	var nilSpans *Spans
	nilSpans.TrackActive()
	if nilSpans.Active() != nil {
		t.Fatal("nil Spans Active != nil")
	}
}
