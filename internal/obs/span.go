package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span-histogram shape: all phase histograms share one fixed shape so they
// merge and render uniformly. Durations above spanHistMax clamp into the
// last bin (Histogram's convention); Count and Sum stay exact regardless,
// so means and rates are always accurate and only the bin resolution
// saturates for very long phases.
const (
	spanHistMax  = 1.0 // seconds
	spanHistBins = 50
)

// Spans times named simulator phases on the wall clock and aggregates the
// durations into one fixed-shape Histogram per phase, plus (optionally) one
// Chrome trace-event record per span for WriteTrace.
//
// Timings use Go's monotonic clock (time.Now/time.Since), so they are
// immune to wall-clock adjustments — but they are still *host* time, not
// simulated time, and therefore inherently nondeterministic. That is why
// Spans deliberately breaks the package's single-goroutine rule: unlike the
// deterministic sinks (Registry, EventLog, Trace), a Spans is safe for
// concurrent use and is shared by every worker of a parallel run instead of
// going through the cell-merge protocol. Live readers (the statusz server)
// snapshot it mid-run.
//
// A nil *Spans is the disabled state: Start returns a zero Span whose Stop
// is a no-op, so disabled phase timing costs one nil check per phase
// (guarded by BenchmarkObsOverhead and TestAllocGuardSpans).
type Spans struct {
	mu     sync.Mutex
	t0     time.Time
	hists  map[string]*Histogram
	order  []string
	trace  bool
	events []spanEvent

	// Active-span tracking is opt-in (TrackActive) and gated by an atomic so
	// the disabled Start path stays allocation-free: the watchdog uses it to
	// report what phase a stuck cell is currently inside.
	tracking atomic.Bool
	nextID   uint64
	active   map[uint64]ActiveSpan
}

type spanEvent struct {
	name    string
	startUs float64
	durUs   float64
}

// NewSpans returns an enabled, empty phase timer. The creation instant is
// the zero point for WriteTrace timestamps.
func NewSpans() *Spans {
	return &Spans{t0: time.Now(), hists: make(map[string]*Histogram)}
}

// Enabled reports whether spans are recorded.
func (s *Spans) Enabled() bool { return s != nil }

// EnableTrace additionally records every completed span as a Chrome trace
// complete event for WriteTrace (one slice append per span; without it a
// Spans holds only the bounded per-phase histograms).
func (s *Spans) EnableTrace() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.trace = true
	s.mu.Unlock()
}

// Span is one in-flight phase timing handed out by Start. The zero Span
// (from a nil *Spans) is valid and Stop on it is a no-op.
type Span struct {
	spans *Spans
	name  string
	start time.Time
	id    uint64 // nonzero only while active-span tracking is on
}

// Start begins timing the named phase. Phase names are hierarchical
// dot-separated identifiers ("system.epoch_model", "core.place"); the
// aggregated histogram is published as "span.<name>.seconds".
func (s *Spans) Start(name string) Span {
	if s == nil {
		return Span{}
	}
	sp := Span{spans: s, name: name, start: time.Now()}
	if s.tracking.Load() {
		s.mu.Lock()
		s.nextID++
		sp.id = s.nextID
		s.active[sp.id] = ActiveSpan{Name: name, Start: sp.start}
		s.mu.Unlock()
	}
	return sp
}

// Stop ends the span, records its duration, and returns it. Stop on the
// zero Span returns 0.
func (sp Span) Stop() time.Duration {
	if sp.spans == nil {
		return 0
	}
	d := time.Since(sp.start)
	sp.spans.observe(sp.name, sp.start, d)
	if sp.id != 0 {
		sp.spans.mu.Lock()
		delete(sp.spans.active, sp.id)
		sp.spans.mu.Unlock()
	}
	return d
}

// ActiveSpan is one phase currently being timed, reported by Active.
type ActiveSpan struct {
	Name  string
	Start time.Time
}

// TrackActive turns on active-span tracking: from now on every in-flight
// Start/Stop pair is visible through Active. Off by default because it adds
// a map write per span; the watchdog enables it to say what a stuck cell is
// doing.
func (s *Spans) TrackActive() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.active == nil {
		s.active = make(map[uint64]ActiveSpan)
	}
	s.mu.Unlock()
	s.tracking.Store(true)
}

// Active returns the spans currently in flight, oldest first. Nil without
// TrackActive or on a nil Spans.
func (s *Spans) Active() []ActiveSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.active) == 0 {
		return nil
	}
	out := make([]ActiveSpan, 0, len(s.active))
	for _, a := range s.active {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Record observes an externally-timed phase: a duration d that began at
// start. Callers that already measure a duration for another consumer (the
// harness times each cell once for both Progress and Spans) use it instead
// of Start/Stop to avoid reading the clock twice.
func (s *Spans) Record(name string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	s.observe(name, start, d)
}

func (s *Spans) observe(name string, start time.Time, d time.Duration) {
	s.mu.Lock()
	h := s.hists[name]
	if h == nil {
		h = &Histogram{
			name: "span." + name + ".seconds",
			lo:   0, hi: spanHistMax,
			bins: make([]uint64, spanHistBins),
		}
		s.hists[name] = h
		s.order = append(s.order, name)
	}
	h.Observe(d.Seconds())
	if s.trace {
		s.events = append(s.events, spanEvent{
			name:    name,
			startUs: float64(start.Sub(s.t0)) / float64(time.Microsecond),
			durUs:   float64(d) / float64(time.Microsecond),
		})
	}
	s.mu.Unlock()
}

// Snapshot returns every phase histogram as a MetricSnapshot named
// "span.<phase>.seconds", sorted by name — the same shape Registry.Snapshot
// produces, so span timings render through the same text and Prometheus
// writers. A nil Spans snapshots to nil.
func (s *Spans) Snapshot() []MetricSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, len(s.order))
	copy(names, s.order)
	sort.Strings(names)
	out := make([]MetricSnapshot, 0, len(names))
	for _, name := range names {
		h := s.hists[name]
		out = append(out, MetricSnapshot{
			Name: h.name, Kind: KindHistogram,
			Value: h.Mean(), Count: h.count, Sum: h.sum,
			Lo: h.lo, Hi: h.hi, Bins: h.Bins(),
		})
	}
	return out
}

// WriteText dumps one summary line per phase, sorted by name — the end-of-
// run report the CLIs print to stderr under -spans. A nil Spans writes
// nothing.
func (s *Spans) WriteText(w io.Writer) error {
	for _, snap := range s.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s histogram count=%d sum=%g mean=%g\n",
			snap.Name, snap.Count, snap.Sum, snap.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrace appends the recorded spans (EnableTrace must have been on) to
// tr as one "wall clock" lane with one thread per phase name. Unlike the
// simulator's own lanes, whose timestamps are simulated time, this lane's
// timestamps are real microseconds since NewSpans — the two time bases
// share a trace file but not a clock, which Perfetto renders fine as
// separate process tracks. No-op on a nil Spans or nil tr.
func (s *Spans) WriteTrace(tr *Trace) {
	if s == nil || tr == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) == 0 {
		return
	}
	lane := tr.Lane("wall clock")
	tids := make(map[string]int, len(s.order))
	names := make([]string, len(s.order))
	copy(names, s.order)
	sort.Strings(names)
	for i, name := range names {
		tids[name] = i
		tr.ThreadName(lane, i, name)
	}
	for _, e := range s.events {
		tr.Span(lane, tids[e.name], e.name, "span", e.startUs, e.durUs, nil)
	}
}
