package prom_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumanji/internal/obs"
	"jumanji/internal/obs/prom"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (run with -update to rewrite):\ngot:\n%swant:\n%s", path, got, want)
	}
}

func TestWriteGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("system.epochs").Add(120)
	reg.Counter("system.reconfigs").Add(7)
	reg.Gauge("feedback.app0.alloc_bytes").Set(2.5e6)
	reg.Gauge("run.negative").Set(-1.5)
	h := reg.Histogram("system.lat_norm", 0, 2, 4)
	for _, v := range []float64{0.1, 0.4, 0.6, 1.1, 1.9, 5.0} { // 5.0 clamps into the top bin
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := prom.Write(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden(t, "registry.prom", buf.Bytes())
}

func TestWriteSpansGolden(t *testing.T) {
	// Spans durations are nondeterministic, so build the equivalent
	// snapshots by hand: same names and shape a Spans would publish.
	snaps := []obs.MetricSnapshot{
		{
			Name: "span.core.place.seconds", Kind: obs.KindHistogram,
			Value: 0.015, Count: 2, Sum: 0.03, Lo: 0, Hi: 1,
			Bins: append([]uint64{2}, make([]uint64, 49)...),
		},
	}
	var buf bytes.Buffer
	if err := prom.Write(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	golden(t, "spans.prom", buf.Bytes())
}

func TestWriteFormat(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a.count").Inc()
	reg.Histogram("h", 0, 1, 2).Observe(0.25)
	var buf bytes.Buffer
	if err := prom.Write(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE a_count_total counter\n",
		"a_count_total 1\n",
		"# TYPE h histogram\n",
		`h_bucket{le="0.5"} 1` + "\n",
		`h_bucket{le="1"} 1` + "\n",
		`h_bucket{le="+Inf"} 1` + "\n",
		"h_sum 0.25\n",
		"h_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and end at the exact count.
	if strings.Contains(out, `h_bucket{le="1"} 0`) {
		t.Errorf("buckets not cumulative:\n%s", out)
	}
	// Every line must be a comment or name value — no blank lines, LF endings.
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d is blank", i)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("output must end with a newline")
	}
}

func TestName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"system.epochs", "system_epochs"},
		{"span.core.place.seconds", "span_core_place_seconds"},
		{"already_fine:ok", "already_fine:ok"},
		{"lat/deadline", "lat_deadline"},
		{"0weird", "_0weird"},
		{"", ""},
	} {
		if got := prom.Name(tc.in); got != tc.want {
			t.Errorf("Name(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWriteCounterAlreadyTotal(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("run.cells_done_total").Add(3)
	var buf bytes.Buffer
	if err := prom.Write(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "_total_total") {
		t.Errorf("doubled _total suffix:\n%s", buf.String())
	}
}

func TestWriteHostileLabelsGolden(t *testing.T) {
	// Label values and HELP text exercise every 0.0.4 escape: backslash,
	// double-quote, and embedded newline.
	snaps := []obs.MetricSnapshot{
		{
			Name: "run.cells_done", Kind: obs.KindCounter, Value: 3,
			Help:   "cells completed so far\nsecond line with a \\ backslash",
			Labels: map[string]string{"sweep": `compare/"Static"+Jumanji`, "path": `C:\runs\last`},
		},
		{
			Name: "run.worker_utilization", Kind: obs.KindGauge, Value: 0.75,
			Help:   "busy seconds / elapsed",
			Labels: map[string]string{"host": "node\n1", "bad key!": "kept"},
		},
		{
			Name: "span.place.seconds", Kind: obs.KindHistogram,
			Value: 0.5, Count: 2, Sum: 1, Lo: 0, Hi: 1, Bins: []uint64{1, 1},
			Labels: map[string]string{"design": `Jumanji "secure"`},
		},
	}
	var buf bytes.Buffer
	if err := prom.Write(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	golden(t, "labels.prom", buf.Bytes())
}

func TestEscapes(t *testing.T) {
	if got, want := prom.EscapeLabel("a\\b\"c\nd"), `a\\b\"c\nd`; got != want {
		t.Errorf("EscapeLabel = %q; want %q", got, want)
	}
	if got, want := prom.EscapeHelp("a\\b\"c\nd"), `a\\b"c\nd`; got != want {
		t.Errorf("EscapeHelp = %q; want %q", got, want)
	}
}
