// Package prom renders obs metric snapshots in the Prometheus text
// exposition format (version 0.0.4), the format scraped from /metrics
// endpoints. It depends only on the snapshot types, so anything that can
// produce []obs.MetricSnapshot — a Registry, a Spans, the statusz server's
// published copies — renders through the same writer.
//
// The simulator's dotted metric names ("system.epochs",
// "span.core.place.seconds") are sanitized into the Prometheus alphabet by
// mapping every invalid character to '_' ("system_epochs"). Counters
// additionally get the conventional "_total" suffix.
//
// Histograms render as the standard cumulative _bucket/_sum/_count series.
// The obs Histogram clamps out-of-range observations into its edge bins, so
// the le bound of the last finite bucket is nominal: samples beyond hi are
// counted there rather than only in the +Inf bucket. _sum and _count are
// always exact.
package prom

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"jumanji/internal/obs"
)

// ContentType is the HTTP Content-Type for this exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Write renders the snapshots to w, in the given order (obs snapshots come
// pre-sorted by name). Callers interleaving several snapshot sources must
// ensure names do not collide after sanitization.
func Write(w io.Writer, snaps []obs.MetricSnapshot) error {
	bw := bufio.NewWriter(w)
	for _, s := range snaps {
		name := Name(s.Name)
		labels := labelPairs(s.Labels)
		plain := braced(labels) // label set for non-bucket samples
		switch s.Kind {
		case obs.KindCounter:
			if !strings.HasSuffix(name, "_total") {
				name += "_total"
			}
			help(bw, name, s.Help)
			fmt.Fprintf(bw, "# TYPE %s counter\n", name)
			fmt.Fprintf(bw, "%s%s %s\n", name, plain, num(s.Value))
		case obs.KindGauge:
			help(bw, name, s.Help)
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s%s %s\n", name, plain, num(s.Value))
		case obs.KindHistogram:
			help(bw, name, s.Help)
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			width := (s.Hi - s.Lo) / float64(len(s.Bins))
			var cum uint64
			for i, b := range s.Bins {
				cum += b
				le := s.Lo + width*float64(i+1)
				fmt.Fprintf(bw, "%s_bucket%s %d\n", name, braced(append(labels, fmt.Sprintf("le=%q", num(le)))), cum)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", name, braced(append(labels, `le="+Inf"`)), s.Count)
			fmt.Fprintf(bw, "%s_sum%s %s\n", name, plain, num(s.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", name, plain, s.Count)
		default:
			return fmt.Errorf("prom: metric %q has unknown kind %v", s.Name, s.Kind)
		}
	}
	return bw.Flush()
}

// Name maps a simulator metric name into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing every other character with '_' and
// prefixing '_' when the name would start with a digit.
func Name(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// help writes the HELP line when the snapshot carries help text.
func help(w io.Writer, name, text string) {
	if text != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, EscapeHelp(text))
	}
}

// labelPairs renders a label map as sorted, escaped k="v" pairs. Label
// names pass through Name sanitization (same alphabet, minus ':').
func labelPairs(labels map[string]string) []string {
	if len(labels) == 0 {
		return nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, len(keys))
	for i, k := range keys {
		pairs[i] = fmt.Sprintf(`%s="%s"`, strings.ReplaceAll(Name(k), ":", "_"), EscapeLabel(labels[k]))
	}
	return pairs
}

// braced joins label pairs into a {..} label set; empty input renders as
// no label set at all, keeping unlabeled output byte-identical to before.
func braced(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// EscapeLabel escapes a label value per the 0.0.4 exposition rules:
// backslash, double-quote, and line feed become \\, \", and \n.
func EscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// EscapeHelp escapes HELP text per the 0.0.4 exposition rules: backslash
// and line feed become \\ and \n (quotes are legal in HELP text).
func EscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// num formats a sample value the way Prometheus clients do: shortest
// round-trip representation, no exponent for typical magnitudes.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
