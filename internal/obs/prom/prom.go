// Package prom renders obs metric snapshots in the Prometheus text
// exposition format (version 0.0.4), the format scraped from /metrics
// endpoints. It depends only on the snapshot types, so anything that can
// produce []obs.MetricSnapshot — a Registry, a Spans, the statusz server's
// published copies — renders through the same writer.
//
// The simulator's dotted metric names ("system.epochs",
// "span.core.place.seconds") are sanitized into the Prometheus alphabet by
// mapping every invalid character to '_' ("system_epochs"). Counters
// additionally get the conventional "_total" suffix.
//
// Histograms render as the standard cumulative _bucket/_sum/_count series.
// The obs Histogram clamps out-of-range observations into its edge bins, so
// the le bound of the last finite bucket is nominal: samples beyond hi are
// counted there rather than only in the +Inf bucket. _sum and _count are
// always exact.
package prom

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"jumanji/internal/obs"
)

// ContentType is the HTTP Content-Type for this exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Write renders the snapshots to w, in the given order (obs snapshots come
// pre-sorted by name). Callers interleaving several snapshot sources must
// ensure names do not collide after sanitization.
func Write(w io.Writer, snaps []obs.MetricSnapshot) error {
	bw := bufio.NewWriter(w)
	for _, s := range snaps {
		name := Name(s.Name)
		switch s.Kind {
		case obs.KindCounter:
			if !strings.HasSuffix(name, "_total") {
				name += "_total"
			}
			fmt.Fprintf(bw, "# TYPE %s counter\n", name)
			fmt.Fprintf(bw, "%s %s\n", name, num(s.Value))
		case obs.KindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s %s\n", name, num(s.Value))
		case obs.KindHistogram:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			width := (s.Hi - s.Lo) / float64(len(s.Bins))
			var cum uint64
			for i, b := range s.Bins {
				cum += b
				le := s.Lo + width*float64(i+1)
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, num(le), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
			fmt.Fprintf(bw, "%s_sum %s\n", name, num(s.Sum))
			fmt.Fprintf(bw, "%s_count %d\n", name, s.Count)
		default:
			return fmt.Errorf("prom: metric %q has unknown kind %v", s.Name, s.Kind)
		}
	}
	return bw.Flush()
}

// Name maps a simulator metric name into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing every other character with '_' and
// prefixing '_' when the name would start with a digit.
func Name(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// num formats a sample value the way Prometheus clients do: shortest
// round-trip representation, no exponent for typical magnitudes.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
