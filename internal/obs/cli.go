package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"jumanji/internal/obs/tsdb"
)

// CLI bundles the standard observability flags shared by the commands
// (-events, -tracefile, -metrics, -spans, -cpuprofile, -memprofile) and
// owns the files behind them. Usage:
//
//	var cli obs.CLI
//	cli.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	if err := cli.Open(); err != nil { ... }
//	defer cli.Close()
//	cfg.Metrics, cfg.Events, cfg.Trace = cli.Registry(), cli.Events(), cli.Trace()
//
// Flags left empty cost nothing: the accessors return nil and every sink
// method no-ops on nil.
type CLI struct {
	EventsPath  string
	TracePath   string
	MetricsPath string
	TSDBPath    string
	ProvPath    string
	CPUProfile  string
	MemProfile  string
	SpansOn     bool

	registry *Registry
	events   *EventLog
	trace    *Trace
	ts       *tsdb.DB
	prov     *EventLog
	spans    *Spans
	files    []*os.File
	cpuOn    bool
}

// RegisterFlags declares the observability flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.EventsPath, "events", "", "write the JSONL epoch decision log to this file")
	fs.StringVar(&c.TracePath, "tracefile", "", "write a Chrome trace-event file (loadable in Perfetto) to this path")
	fs.StringVar(&c.MetricsPath, "metrics", "", "dump the metric registry as text to this file after the run, or '-' for stderr")
	fs.StringVar(&c.TSDBPath, "tsdb", "", "record per-epoch metric time series (flight recorder) and dump them as JSON to this file; implies metric collection")
	fs.StringVar(&c.ProvPath, "provenance", "", "write the JSONL placement-provenance log (why every VM landed where it did) to this file")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
	fs.BoolVar(&c.SpansOn, "spans", false, "time simulator phases on the wall clock; summary to stderr at exit (implied by -status)")
}

func (c *CLI) create(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	c.files = append(c.files, f)
	return f, nil
}

// Open creates the requested output files and starts CPU profiling. It is a
// no-op for every flag left empty.
func (c *CLI) Open() error {
	if c.EventsPath != "" {
		f, err := c.create(c.EventsPath)
		if err != nil {
			return err
		}
		c.events = NewEventLog(f)
	}
	if c.TracePath != "" {
		f, err := c.create(c.TracePath)
		if err != nil {
			return err
		}
		c.trace = NewTrace(f)
	}
	if c.MetricsPath != "" || c.TSDBPath != "" {
		// The flight recorder samples the registry, so -tsdb forces one on
		// even without -metrics.
		c.registry = NewRegistry()
	}
	if c.TSDBPath != "" {
		c.ts = tsdb.New(tsdb.DefaultCapacity)
	}
	if c.ProvPath != "" {
		f, err := c.create(c.ProvPath)
		if err != nil {
			return err
		}
		c.prov = NewEventLog(f)
	}
	if c.SpansOn {
		c.spans = NewSpans()
		if c.trace != nil {
			// With both -spans and -tracefile, the phase timings land in the
			// trace as their own "wall clock" lane at Close.
			c.spans.EnableTrace()
		}
	}
	if c.CPUProfile != "" {
		f, err := c.create(c.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		c.cpuOn = true
	}
	return nil
}

// Registry returns the metric registry (nil when -metrics is unset).
func (c *CLI) Registry() *Registry { return c.registry }

// Events returns the decision log (nil when -events is unset).
func (c *CLI) Events() *EventLog { return c.events }

// Trace returns the trace sink (nil when -tracefile is unset).
func (c *CLI) Trace() *Trace { return c.trace }

// TS returns the flight-recorder store (nil when -tsdb is unset).
func (c *CLI) TS() *tsdb.DB { return c.ts }

// Prov returns the placement-provenance log (nil when -provenance is
// unset).
func (c *CLI) Prov() *EventLog { return c.prov }

// Spans returns the phase timers (nil when -spans is unset).
func (c *CLI) Spans() *Spans { return c.spans }

// Close finishes every sink: stops the CPU profile, writes the heap
// profile, flushes the trace, dumps the metrics, and closes the files. It
// returns the first error but always attempts every step.
func (c *CLI) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if c.cpuOn {
		pprof.StopCPUProfile()
		c.cpuOn = false
	}
	if c.MemProfile != "" {
		if f, err := c.create(c.MemProfile); err != nil {
			keep(err)
		} else {
			runtime.GC() // fresh statistics for the heap profile
			keep(pprof.WriteHeapProfile(f))
		}
	}
	if c.spans != nil {
		c.spans.WriteTrace(c.trace) // before Close; no-op when -tracefile is unset
		keep(c.spans.WriteText(os.Stderr))
	}
	if c.trace != nil {
		keep(c.trace.Close())
	}
	if c.events != nil {
		keep(c.events.Err())
	}
	if c.prov != nil {
		keep(c.prov.Err())
	}
	if c.ts != nil {
		if f, err := c.create(c.TSDBPath); err != nil {
			keep(err)
		} else {
			keep(c.ts.Write(f))
		}
	}
	if c.registry != nil && c.MetricsPath != "" {
		if c.MetricsPath == "-" {
			keep(c.registry.WriteText(os.Stderr))
		} else if f, err := c.create(c.MetricsPath); err != nil {
			keep(err)
		} else {
			keep(c.registry.WriteText(f))
		}
	}
	for _, f := range c.files {
		if err := f.Close(); err != nil {
			keep(fmt.Errorf("obs: closing %s: %w", f.Name(), err))
		}
	}
	c.files = nil
	return first
}
