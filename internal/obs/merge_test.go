package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegistryMerge verifies the worker-pool fold: counters and histogram
// bins add, gauges take the merged-in value, and metrics missing from the
// destination are created.
func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("epochs").Add(3)
	dst.Gauge("alloc").Set(1)
	dst.Histogram("lat", 0, 2, 4).Observe(0.5)

	src := NewRegistry()
	src.Counter("epochs").Add(7)
	src.Counter("reconfigs").Add(2) // only in src
	src.Gauge("alloc").Set(9)
	h := src.Histogram("lat", 0, 2, 4)
	h.Observe(1.5)
	h.Observe(1.5)

	dst.Merge(src)

	if got := dst.Counter("epochs").Value(); got != 10 {
		t.Errorf("merged counter = %d, want 10", got)
	}
	if got := dst.Counter("reconfigs").Value(); got != 2 {
		t.Errorf("created counter = %d, want 2", got)
	}
	if got := dst.Gauge("alloc").Value(); got != 9 {
		t.Errorf("merged gauge = %g, want src's 9 (last write wins)", got)
	}
	hd := dst.Histogram("lat", 0, 2, 4)
	if hd.Count() != 3 || hd.Sum() != 3.5 {
		t.Errorf("merged histogram count=%d sum=%g, want 3/3.5", hd.Count(), hd.Sum())
	}
	bins := hd.Bins()
	if bins[1] != 1 || bins[3] != 2 {
		t.Errorf("merged bins = %v", bins)
	}
}

// TestRegistryMergeNeverSetGauge: a gauge src registered but never set must
// not clobber dst's value, only ensure the name exists.
func TestRegistryMergeNeverSetGauge(t *testing.T) {
	dst := NewRegistry()
	dst.Gauge("alloc").Set(5)
	src := NewRegistry()
	src.Gauge("alloc") // registered, never set
	src.Gauge("other") // only in src, never set
	dst.Merge(src)
	if got := dst.Gauge("alloc").Value(); got != 5 {
		t.Errorf("unset src gauge clobbered dst: %g", got)
	}
	if len(dst.Snapshot()) != 2 {
		t.Errorf("merge did not register src's gauge name")
	}
}

func TestRegistryMergeNilSafety(t *testing.T) {
	var nilReg *Registry
	nilReg.Merge(NewRegistry()) // must not panic
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Merge(nil)
	if r.Counter("c").Value() != 1 {
		t.Error("merging nil src changed dst")
	}
}

// TestRegistryMergeShapeMismatchPanics pins the documented invariant for
// histograms with differing bucket boundaries: bin counts from different
// shapes cannot be combined meaningfully, so Merge panics — the same
// programming-error convention as re-registering a histogram with a new
// shape — rather than silently misbinning. Every disagreement dimension is
// covered: bounds (lo, hi) and bin count.
func TestRegistryMergeShapeMismatchPanics(t *testing.T) {
	for _, tc := range []struct {
		name   string
		lo, hi float64
		nbins  int
	}{
		{"hi", 0, 2, 4},
		{"lo", -1, 1, 4},
		{"nbins", 0, 1, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dst := NewRegistry()
			dst.Histogram("h", 0, 1, 4)
			src := NewRegistry()
			src.Histogram("h", tc.lo, tc.hi, tc.nbins)
			defer func() {
				if recover() == nil {
					t.Fatalf("merging histograms with differing %s did not panic", tc.name)
				}
			}()
			dst.Merge(src)
		})
	}
}

// TestRegistryMergeOrderIndependentForCountersAndHistograms: fold order
// must not change additive metrics, so completion order cannot leak into
// merged results as long as callers merge in cell order.
func TestRegistryMergeCommutesForAdditiveMetrics(t *testing.T) {
	mk := func(c uint64, obs float64) *Registry {
		r := NewRegistry()
		r.Counter("n").Add(c)
		r.Histogram("h", 0, 10, 5).Observe(obs)
		return r
	}
	ab := NewRegistry()
	ab.Merge(mk(1, 2))
	ab.Merge(mk(10, 7))
	ba := NewRegistry()
	ba.Merge(mk(10, 7))
	ba.Merge(mk(1, 2))
	var a, b bytes.Buffer
	if err := ab.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := ba.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("additive merge not commutative:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestEventLogAppendJSONL verifies the per-worker buffer replay: appended
// records keep their payload bytes but continue the destination's sequence,
// and the result validates against the schema.
func TestEventLogAppendJSONL(t *testing.T) {
	var cell1, cell2, merged, serial bytes.Buffer

	emitRun := func(l *EventLog, design string) {
		l.EmitRunStart(RunStart{
			Design: design, Epochs: 2, Warmup: 1, Banks: 20, BankBytes: 1 << 20,
			Apps: []AppInfo{{App: 0, Name: "xapian", LatencyCritical: true}},
		})
		l.EmitEpoch(Epoch{Epoch: 0, Vulnerability: 1})
		l.EmitRunEnd(RunEnd{Design: design})
	}

	emitRun(NewEventLog(&cell1), "Static")
	emitRun(NewEventLog(&cell2), "Jumanji")

	m := NewEventLog(&merged)
	if err := m.AppendJSONL(cell1.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendJSONL(cell2.Bytes()); err != nil {
		t.Fatal(err)
	}

	s := NewEventLog(&serial)
	emitRun(s, "Static")
	emitRun(s, "Jumanji")

	if merged.String() != serial.String() {
		t.Errorf("merged log differs from serial emission:\n%s\nvs\n%s", merged.String(), serial.String())
	}
	counts, err := ValidateEventLog(merged.Bytes())
	if err != nil {
		t.Fatalf("merged log fails validation: %v", err)
	}
	if counts[TypeRunStart] != 2 || counts[TypeEpoch] != 2 || counts[TypeRunEnd] != 2 {
		t.Errorf("merged counts = %v", counts)
	}
}

func TestEventLogAppendJSONLNilAndErrors(t *testing.T) {
	var l *EventLog
	if err := l.AppendJSONL([]byte(`{"v":3,"seq":1,"type":"run_end","data":{"design":"x"}}`)); err != nil {
		t.Fatalf("nil log append errored: %v", err)
	}
	var buf bytes.Buffer
	el := NewEventLog(&buf)
	if err := el.AppendJSONL([]byte(`not json`)); err == nil {
		t.Fatal("malformed line accepted")
	}
	if el.Err() == nil {
		t.Fatal("error did not poison the log")
	}
	el2 := NewEventLog(&buf)
	if err := el2.AppendJSONL([]byte(`{"v":99,"seq":1,"type":"run_end","data":{"design":"x"}}`)); err == nil {
		t.Fatal("wrong schema version accepted")
	}
}

// TestTraceMerge verifies lane remapping: merging per-cell traces in cell
// order assigns the same pids a serial run sharing one trace would have.
func TestTraceMerge(t *testing.T) {
	var serialBuf, mergedBuf bytes.Buffer

	record := func(tr *Trace, name string) {
		pid := tr.Lane(name)
		tr.ThreadName(pid, 0, "epochs")
		tr.Span(pid, 0, "epoch", "epoch", 0, 100, map[string]any{"d": name})
	}

	serial := NewTrace(&serialBuf)
	record(serial, "Static")
	record(serial, "Jumanji")
	if err := serial.Close(); err != nil {
		t.Fatal(err)
	}

	cell1, cell2 := NewTrace(nil), NewTrace(nil)
	record(cell1, "Static")
	record(cell2, "Jumanji")
	merged := NewTrace(&mergedBuf)
	merged.Merge(cell1)
	merged.Merge(cell2)
	if err := merged.Close(); err != nil {
		t.Fatal(err)
	}

	if serialBuf.String() != mergedBuf.String() {
		t.Errorf("merged trace differs from serial:\n%s\nvs\n%s", serialBuf.String(), mergedBuf.String())
	}
	if _, err := ValidateTraceJSON(mergedBuf.Bytes()); err != nil {
		t.Fatalf("merged trace fails validation: %v", err)
	}
}

// TestTraceMergeOrderingStable pins the property the parallel engine's
// byte-identity guarantee rests on: merged output is a pure function of
// merge order. Event order within each source is preserved, sources
// concatenate in merge order, and lane pids depend only on how many lanes
// were merged before — so merging the same cells in the same order twice
// yields byte-identical traces, while a different merge order yields a
// different (but internally consistent) lane numbering.
func TestTraceMergeOrderingStable(t *testing.T) {
	mkCell := func(name string) *Trace {
		tr := NewTrace(nil)
		pid := tr.Lane(name)
		tr.Span(pid, 0, "a", "c", 0, 1, nil)
		tr.Instant(pid, 0, "b", 2, nil)
		return tr
	}

	render := func(order ...string) string {
		var buf bytes.Buffer
		dst := NewTrace(&buf)
		for _, name := range order {
			dst.Merge(mkCell(name))
		}
		if err := dst.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateTraceJSON(buf.Bytes()); err != nil {
			t.Fatalf("merged trace invalid: %v", err)
		}
		return buf.String()
	}

	first := render("c0", "c1", "c2")
	if second := render("c0", "c1", "c2"); second != first {
		t.Errorf("same merge order produced different bytes:\n%s\nvs\n%s", first, second)
	}
	swapped := render("c1", "c0", "c2")
	if swapped == first {
		t.Error("merge order is not reflected in the output — pid remapping lost")
	}
	// The swap must only renumber lanes, never reorder events within one
	// source: each cell's span still precedes its instant.
	for _, out := range []string{first, swapped} {
		if ai, bi := strings.Index(out, `"name":"a"`), strings.Index(out, `"name":"b"`); ai == -1 || bi == -1 || ai > bi {
			t.Errorf("within-source event order not preserved:\n%s", out)
		}
	}
}

func TestTraceMergeNilAndClosed(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Merge(NewTrace(nil)) // must not panic

	tr := NewTrace(&bytes.Buffer{})
	tr.Merge(nil) // must not panic

	src := NewTrace(nil)
	src.Lane("x")
	var buf bytes.Buffer
	closed := NewTrace(&buf)
	if err := closed.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	closed.Merge(src)
	if buf.Len() != n {
		t.Error("merge into closed trace changed output")
	}
}
