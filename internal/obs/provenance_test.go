package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeProv decodes a provenance log into typed decisions and valves, in
// stream order.
func decodeProv(t *testing.T, data []byte) (ds []PlacementDecision, vs []PlacementValve) {
	t.Helper()
	evs, err := DecodeEventLog(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		switch ev.Type {
		case TypePlacementDecision:
			var d PlacementDecision
			if err := json.Unmarshal(ev.Data, &d); err != nil {
				t.Fatal(err)
			}
			ds = append(ds, d)
		case TypePlacementValve:
			var v PlacementValve
			if err := json.Unmarshal(ev.Data, &v); err != nil {
				t.Fatal(err)
			}
			vs = append(vs, v)
		default:
			t.Fatalf("unexpected event type %q in provenance log", ev.Type)
		}
	}
	return ds, vs
}

func TestProvRecorderAccumulatesAndFlushes(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf)
	r := NewProvRecorder(log, "Jumanji", []string{"xapian", "mcf"})
	if !r.Enabled() {
		t.Fatal("live recorder reports disabled")
	}

	r.StartEpoch(3, 3e5)
	r.Decision(StageLatCrit, 0, 0, true, 2<<20)
	r.Eliminated(StageLatCrit, 0, 0, 9, 4, 0, ElimSecurityDomain)
	r.Placed(StageLatCrit, 0, 0, 1, 1, 2<<20)
	r.Score(StageLatCrit, 0, 0, 0.125)
	r.Valve(ValveBankMinStepUp, 1, 0, 0, "")
	r.Decision(StageVMBanks, 1, -1, false, 4<<20)
	r.Placed(StageVMBanks, 1, -1, 5, 2, 4<<20)
	r.Flush()

	ds, vs := decodeProv(t, buf.Bytes())
	// Valves flush before decisions; decisions keep insertion order.
	if len(vs) != 1 || vs[0].Valve != ValveBankMinStepUp || vs[0].VM != 1 {
		t.Fatalf("valves = %+v", vs)
	}
	if len(ds) != 2 {
		t.Fatalf("decisions = %+v; want 2", ds)
	}
	d := ds[0]
	if d.Design != "Jumanji" || d.Stage != StageLatCrit || d.Epoch != 3 || d.TimeUs != 3e5 {
		t.Fatalf("decision envelope = %+v", d)
	}
	if d.Name != "xapian" || !d.LatencyCritical || d.Score != 0.125 {
		t.Fatalf("decision = %+v; want named lat-crit app with score", d)
	}
	if len(d.Candidates) != 2 {
		t.Fatalf("candidates = %+v; want eliminated + placed", d.Candidates)
	}
	if d.Candidates[0].Eliminated != ElimSecurityDomain || d.Candidates[0].Bank != 9 {
		t.Fatalf("eliminated candidate = %+v", d.Candidates[0])
	}
	if d.Candidates[1].Eliminated != "" || d.Candidates[1].TakenBytes != 2<<20 || d.PlacedBytes != 2<<20 {
		t.Fatalf("placed candidate = %+v (placed %g)", d.Candidates[1], d.PlacedBytes)
	}
	if ds[1].Name != "" || ds[1].App != -1 {
		t.Fatalf("VM-level decision = %+v; want app -1 with no name", ds[1])
	}

	// Everything the recorder emits must survive strict validation.
	counts, err := ValidateEventLog(buf.Bytes())
	if err != nil {
		t.Fatalf("recorder output fails validation: %v", err)
	}
	if counts[TypePlacementDecision] != 2 || counts[TypePlacementValve] != 1 {
		t.Fatalf("validated counts = %v", counts)
	}
}

func TestProvRecorderAttemptDiscardsDecisionsKeepsValves(t *testing.T) {
	var buf bytes.Buffer
	r := NewProvRecorder(NewEventLog(&buf), "Jumanji", nil)
	r.StartEpoch(0, 0)

	r.Attempt()
	r.Decision(StageVMBanks, 0, -1, false, 1)
	r.Valve(ValveShrinkLatSizes, -1, 0, 0.9, "first attempt failed")

	r.Attempt() // retry: decisions from the failed attempt vanish
	r.Decision(StageVMBanks, 1, -1, false, 2)
	r.Flush()

	ds, vs := decodeProv(t, buf.Bytes())
	if len(ds) != 1 || ds[0].VM != 1 {
		t.Fatalf("decisions = %+v; want only the second attempt's", ds)
	}
	if len(vs) != 1 || vs[0].Attempt != 0 {
		t.Fatalf("valves = %+v; want the first attempt's valve kept", vs)
	}
}

func TestProvRecorderRegionAdoptTranslatesIDs(t *testing.T) {
	var buf bytes.Buffer
	r := NewProvRecorder(NewEventLog(&buf), "Sharded(Jumanji)", []string{"a", "b", "c"})
	r.StartEpoch(1, 1e5)

	// Region 1 sees local app 0 = global app 2, local bank 0 = global bank 10.
	sub := r.Region(1, func(la int) int { return la + 2 }, func(lb int) int { return lb + 10 })
	sub.Decision(StageVMBanks, 7, 0, false, 1<<20)
	sub.Eliminated(StageVMBanks, 7, 0, 1, 3, 0, ElimCapacity)
	sub.Placed(StageVMBanks, 7, 0, 0, 2, 1<<20)
	sub.Valve(ValveWayQuantumRescale, 7, 0, 0.5, "")
	r.Adopt(sub)
	r.Flush()

	ds, vs := decodeProv(t, buf.Bytes())
	if len(ds) != 1 || len(vs) != 1 {
		t.Fatalf("adopted records = %d decisions, %d valves", len(ds), len(vs))
	}
	d := ds[0]
	if d.App != 2 || d.Name != "c" || d.Region != 1 {
		t.Fatalf("adopted decision = %+v; want global app 2 (c) in region 1", d)
	}
	if d.Candidates[0].Bank != 11 || d.Candidates[1].Bank != 10 {
		t.Fatalf("adopted candidates = %+v; want global banks 11, 10", d.Candidates)
	}
}

func TestProvRecorderTruncatesCandidateLists(t *testing.T) {
	var buf bytes.Buffer
	r := NewProvRecorder(NewEventLog(&buf), "Jumanji", nil)
	r.StartEpoch(0, 0)
	r.Decision(StageVMBanks, 0, -1, false, 1)
	over := 5
	for b := 0; b < maxCandidatesPerDecision+over; b++ {
		r.Eliminated(StageVMBanks, 0, -1, b, 1, 0, ElimDistance)
	}
	r.Flush()

	ds, _ := decodeProv(t, buf.Bytes())
	if len(ds[0].Candidates) != maxCandidatesPerDecision || ds[0].Truncated != over {
		t.Fatalf("candidates = %d, truncated = %d; want %d and %d",
			len(ds[0].Candidates), ds[0].Truncated, maxCandidatesPerDecision, over)
	}
	if _, err := ValidateEventLog(buf.Bytes()); err != nil {
		t.Fatalf("truncated record fails validation: %v", err)
	}
}

func TestValidateEventRejectsBadProvenance(t *testing.T) {
	for _, tc := range []struct {
		name, line string
	}{
		{"unknown stage", `{"v":3,"seq":1,"type":"placement_decision","data":{"epoch":0,"design":"J","stage":"bogus","vm":0,"app":-1,"region":-1}}`},
		{"negative vm", `{"v":3,"seq":1,"type":"placement_decision","data":{"epoch":0,"design":"J","stage":"vm-banks","vm":-2,"app":-1,"region":-1}}`},
		{"unknown elim reason", `{"v":3,"seq":1,"type":"placement_decision","data":{"epoch":0,"design":"J","stage":"vm-banks","vm":0,"app":-1,"region":-1,"candidates":[{"bank":0,"dist":0,"eliminated":"nope"}]}}`},
		{"candidate neither placed nor eliminated", `{"v":3,"seq":1,"type":"placement_decision","data":{"epoch":0,"design":"J","stage":"vm-banks","vm":0,"app":-1,"region":-1,"candidates":[{"bank":0,"dist":0}]}}`},
		{"unknown valve", `{"v":3,"seq":1,"type":"placement_valve","data":{"epoch":0,"design":"J","valve":"bogus","vm":-1}}`},
	} {
		if _, err := ValidateEvent([]byte(tc.line)); err == nil {
			t.Errorf("%s was accepted", tc.name)
		} else if !strings.Contains(err.Error(), "placement") && !strings.Contains(err.Error(), "seq") {
			t.Errorf("%s: unhelpful error %v", tc.name, err)
		}
	}
}
