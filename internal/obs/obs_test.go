package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", 0, 1, 4)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil metrics")
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Bins() != nil {
		t.Fatal("nil metrics accumulated state")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote text: %q, %v", buf.String(), err)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bank.0.hits")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if r.Counter("bank.0.hits") != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := r.Gauge("alloc")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %g, want 3", g.Value())
	}

	h := r.Histogram("lat", 0, 10, 5)
	for _, x := range []float64{-1, 0, 3, 9.9, 10, 42} {
		h.Observe(x)
	}
	bins := h.Bins()
	if h.Count() != 6 {
		t.Fatalf("histogram count = %d, want 6", h.Count())
	}
	// -1 and 0 clamp/fall into bin 0; 10 and 42 clamp into the last bin.
	if bins[0] != 2 {
		t.Fatalf("first bin = %d, want 2 (clamped underflow plus exact lo)", bins[0])
	}
	if bins[4] != 3 {
		t.Fatalf("last bin = %d, want 3 (9.9, hi, and clamped overflow)", bins[4])
	}
	var total uint64
	for _, b := range bins {
		total += b
	}
	if total != h.Count() {
		t.Fatalf("bin sum %d != count %d", total, h.Count())
	}

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bank.0.hits counter 10") {
		t.Fatalf("text dump missing counter line:\n%s", buf.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter did not panic")
		}
	}()
	r.Gauge("m")
}

func TestNilEventLogAndTraceAreNoOps(t *testing.T) {
	var l *EventLog
	if l.Enabled() {
		t.Fatal("nil event log reports enabled")
	}
	l.EmitRunStart(RunStart{})
	l.EmitEpoch(Epoch{})
	l.EmitRunEnd(RunEnd{})
	if l.Err() != nil {
		t.Fatal("nil event log reported an error")
	}

	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	if pid := tr.Lane("x"); pid != 0 {
		t.Fatalf("nil trace allocated pid %d", pid)
	}
	tr.Span(1, 0, "a", "b", 0, 1, nil)
	tr.Instant(1, 0, "a", 0, nil)
	tr.Counter(1, "a", 0, map[string]float64{"x": 1})
	tr.ThreadName(1, 0, "a")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.EmitRunStart(RunStart{
		Design: "Jumanji", Epochs: 10, Warmup: 2, Banks: 20, BankBytes: 1 << 20,
		Apps: []AppInfo{{App: 0, Name: "xapian", LatencyCritical: true, DeadlineCycles: 5000}},
	})
	l.EmitEpoch(Epoch{
		Epoch: 0, Reconfigured: true,
		Actions: []ControllerAction{{App: 0, Name: "xapian", AllocBytes: 1 << 20, Action: "grow", LatNorm: 0.7}},
		Placement: []PlacementChange{
			{App: 0, Name: "xapian", Banks: 2, TotalBytes: 1 << 20, MovedFraction: 0.25},
		},
		Vulnerability: 1.5,
	})
	l.EmitEpoch(Epoch{Epoch: 1, TimeUs: 1e5, Vulnerability: 1.2, WorstLatNorm: 0.8})
	l.EmitSLOViolation(SLOViolation{
		Epoch: 1, TimeUs: 1e5, App: 0, Name: "xapian", Design: "Jumanji",
		LatNorm: 1.3, SlackCycles: -1500, AllocBytes: 1 << 20,
		Breakdown: LatencyBreakdown{BaseCycles: 900, BankCycles: 100, NoCCycles: 40, MemCycles: 300, QueueCycles: 2000},
		Dominant:  "queue",
	})
	l.EmitReconfigChurn(ReconfigChurn{
		Epoch: 1, TimeUs: 1e5, Cause: "periodic",
		MaxMovedFraction: 0.25, MovedBytes: 1 << 19, InvalidatedLines: 1 << 13, AppsMoved: 2,
	})
	l.EmitRunEnd(RunEnd{Design: "Jumanji", WorstNormTail: 0.9, BatchWeightedSpeedup: 12.2})
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}

	counts, err := ValidateEventLog(buf.Bytes())
	if err != nil {
		t.Fatalf("emitted log fails its own schema: %v", err)
	}
	want := map[string]int{TypeRunStart: 1, TypeEpoch: 2, TypeSLOViolation: 1, TypeReconfigChurn: 1, TypeRunEnd: 1}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("%s count = %d, want %d", k, counts[k], n)
		}
	}

	// Sequence numbers must be strictly increasing from 1.
	var seqs []uint64
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var env struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(line, &env); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, env.Seq)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
}

func TestValidateEventRejections(t *testing.T) {
	bad := []struct {
		name string
		line string
	}{
		{"not json", `{{`},
		{"wrong version", `{"v":99,"seq":1,"type":"run_end","data":{"design":"x","worst_norm_tail":0,"batch_weighted_speedup":0,"vulnerability":0}}`},
		{"zero seq", `{"v":3,"seq":0,"type":"run_end","data":{"design":"x","worst_norm_tail":0,"batch_weighted_speedup":0,"vulnerability":0}}`},
		{"unknown type", `{"v":3,"seq":1,"type":"mystery","data":{}}`},
		{"unknown payload field", `{"v":3,"seq":1,"type":"run_end","data":{"design":"x","worst_norm_tail":0,"batch_weighted_speedup":0,"vulnerability":0,"extra":1}}`},
		{"empty design", `{"v":3,"seq":1,"type":"run_end","data":{"worst_norm_tail":0,"batch_weighted_speedup":0,"vulnerability":0}}`},
		{"bad action", `{"v":3,"seq":1,"type":"epoch","data":{"epoch":0,"reconfigured":true,"actions":[{"app":0,"name":"x","alloc_bytes":1,"delta_bytes":0,"action":"explode"}],"vulnerability":0}}`},
		{"actions without reconfig", `{"v":3,"seq":1,"type":"epoch","data":{"epoch":0,"reconfigured":false,"actions":[{"app":0,"name":"x","alloc_bytes":1,"delta_bytes":0,"action":"hold"}],"vulnerability":0}}`},
		{"pre-timestamp epoch (v1 shape)", `{"v":1,"seq":1,"type":"epoch","data":{"epoch":0,"reconfigured":false,"vulnerability":0}}`},
		{"negative time_us", `{"v":3,"seq":1,"type":"epoch","data":{"epoch":0,"time_us":-1,"reconfigured":false,"vulnerability":0,"worst_lat_norm":0}}`},
		{"slo_violation under deadline", `{"v":3,"seq":1,"type":"slo_violation","data":{"epoch":0,"time_us":0,"app":0,"name":"x","design":"d","lat_norm":0.9,"slack_cycles":1,"alloc_bytes":1,"breakdown":{"base_cycles":0,"bank_cycles":0,"noc_cycles":0,"mem_cycles":0,"queue_cycles":0},"dominant":"mem"}}`},
		{"slo_violation bad dominant", `{"v":3,"seq":1,"type":"slo_violation","data":{"epoch":0,"time_us":0,"app":0,"name":"x","design":"d","lat_norm":1.5,"slack_cycles":-1,"alloc_bytes":1,"breakdown":{"base_cycles":0,"bank_cycles":0,"noc_cycles":0,"mem_cycles":0,"queue_cycles":0},"dominant":"cosmic-rays"}}`},
		{"reconfig_churn bad cause", `{"v":3,"seq":1,"type":"reconfig_churn","data":{"epoch":0,"time_us":0,"cause":"boredom","max_moved_fraction":0,"moved_bytes":0,"invalidated_lines":0,"apps_moved":0}}`},
		{"reconfig_churn moved over 1", `{"v":3,"seq":1,"type":"reconfig_churn","data":{"epoch":0,"time_us":0,"cause":"periodic","max_moved_fraction":1.5,"moved_bytes":0,"invalidated_lines":0,"apps_moved":0}}`},
	}
	for _, tc := range bad {
		if _, err := ValidateEvent([]byte(tc.line)); err == nil {
			t.Errorf("%s: validated but should not", tc.name)
		}
	}
}

func TestTraceExport(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	p1 := tr.Lane("Jumanji")
	p2 := tr.Lane("Jigsaw")
	if p1 == p2 || p1 == 0 || p2 == 0 {
		t.Fatalf("lanes not distinct: %d, %d", p1, p2)
	}
	tr.ThreadName(p1, 0, "epochs")
	tr.Span(p1, 0, "epoch", "epoch", 0, 100000, map[string]any{"epoch": 0})
	tr.Instant(p1, 0, "reconfigure", 100000, map[string]any{"moved": 0.2})
	tr.Counter(p1, "alloc_mb", 0, map[string]float64{"xapian": 2.5})
	tr.Span(p2, 0, "epoch", "epoch", 0, 100000, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is safe and writes nothing more.
	n := buf.Len()
	if err := tr.Close(); err != nil || buf.Len() != n {
		t.Fatal("second Close wrote more output")
	}

	events, err := ValidateTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails its own validation: %v", err)
	}
	if events != 7 { // 2 process_name + thread_name + 2 spans + instant + counter
		t.Fatalf("trace has %d events, want 7", events)
	}
}

func TestValidateTraceRejections(t *testing.T) {
	if _, err := ValidateTraceJSON([]byte(`{"displayTimeUnit":"ms"}`)); err == nil {
		t.Fatal("trace without traceEvents validated")
	}
	if _, err := ValidateTraceJSON([]byte(`{"traceEvents":[{"name":"","ph":"X","ts":0,"pid":1,"tid":0}]}`)); err == nil {
		t.Fatal("unnamed event validated")
	}
	if _, err := ValidateTraceJSON([]byte(`{"traceEvents":[{"name":"e","ph":"Q","ts":0,"pid":1,"tid":0}]}`)); err == nil {
		t.Fatal("unknown phase validated")
	}
	if _, err := ValidateTraceJSON([]byte(`{"traceEvents":[{"name":"e","ph":"X","ts":-1,"pid":1,"tid":0}]}`)); err == nil {
		t.Fatal("negative timestamp validated")
	}
	if _, err := ValidateTraceJSON([]byte(`{"traceEvents":[{"name":"e","ph":"X","ts":0,"pid":0,"tid":0}]}`)); err == nil {
		t.Fatal("zero pid validated")
	}
}
