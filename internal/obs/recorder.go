package obs

import (
	"math"

	"jumanji/internal/obs/tsdb"
)

// Recorder samples a Registry into a tsdb.DB once per epoch: counters
// become per-epoch delta series (under the counter's own name), gauges
// become value series, and histograms become .p50/.p95/.p99 quantile
// series computed over each epoch's *new* observations (bin deltas), so
// the timeline shows the epoch's distribution rather than the run's
// cumulative one.
//
// The recorder is as deterministic as the registry feeding it, and its
// steady state allocates nothing: bindings (series handles plus previous
// counter/bin state) are built once per metric, on the first Sample after
// the metric appears (TestAllocGuardRecorder).
type Recorder struct {
	reg      *Registry
	db       *tsdb.DB
	seen     int // prefix of reg.order already bound
	bindings []recBinding
}

type recBinding struct {
	counter *Counter
	prevN   uint64

	gauge *Gauge

	hist      *Histogram
	prevBins  []uint64
	prevCount uint64

	s, p50, p95, p99 *tsdb.Series
}

// NewRecorder binds every metric currently in reg, with deltas measured
// from the metrics' *current* values — so a registry shared across
// sequential runs in one cell starts each run's timeline at zero, not at
// the previous run's totals. Metrics registered later bind on the next
// Sample with a zero baseline. Returns nil (a no-op recorder) unless both
// the registry and the store are enabled.
func NewRecorder(reg *Registry, db *tsdb.DB) *Recorder {
	if reg == nil || db == nil {
		return nil
	}
	r := &Recorder{reg: reg, db: db}
	r.bind(true)
	return r
}

// bind creates bindings for any registry entries not yet bound. baseline
// controls whether counters and histograms start their deltas from the
// current value (run start) or from zero (appeared mid-run).
func (r *Recorder) bind(baseline bool) {
	for _, name := range r.reg.order[r.seen:] {
		b := recBinding{}
		switch m := r.reg.byName[name].(type) {
		case *Counter:
			b.counter = m
			b.s = r.db.Series(name)
			if baseline {
				b.prevN = m.n
			}
		case *Gauge:
			b.gauge = m
			b.s = r.db.Series(name)
		case *Histogram:
			b.hist = m
			b.prevBins = make([]uint64, len(m.bins))
			b.p50 = r.db.Series(name + ".p50")
			b.p95 = r.db.Series(name + ".p95")
			b.p99 = r.db.Series(name + ".p99")
			if baseline {
				copy(b.prevBins, m.bins)
				b.prevCount = m.count
			}
		}
		r.bindings = append(r.bindings, b)
	}
	r.seen = len(r.reg.order)
}

// Sample records one epoch's state for every bound metric. Gauges that
// were never set, and histograms with no new observations this epoch,
// contribute no sample (a gap, not a zero).
func (r *Recorder) Sample(epoch int) {
	if r == nil {
		return
	}
	if r.seen != len(r.reg.order) {
		r.bind(false)
	}
	for i := range r.bindings {
		b := &r.bindings[i]
		switch {
		case b.counter != nil:
			b.s.Append(epoch, float64(b.counter.n-b.prevN))
			b.prevN = b.counter.n
		case b.gauge != nil:
			if b.gauge.set && !math.IsNaN(b.gauge.v) && !math.IsInf(b.gauge.v, 0) {
				b.s.Append(epoch, b.gauge.v)
			}
		case b.hist != nil:
			h := b.hist
			dc := h.count - b.prevCount
			if dc == 0 {
				continue
			}
			p50, p95, p99 := deltaQuantiles(h, b.prevBins, dc)
			b.p50.Append(epoch, p50)
			b.p95.Append(epoch, p95)
			b.p99.Append(epoch, p99)
			copy(b.prevBins, h.bins)
			b.prevCount = h.count
		}
	}
}

// deltaQuantiles computes the 50th/95th/99th percentiles of the
// observations a histogram gained since prevBins, by linear interpolation
// within bins (each bin's mass spread uniformly across its width).
func deltaQuantiles(h *Histogram, prevBins []uint64, dc uint64) (p50, p95, p99 float64) {
	width := (h.hi - h.lo) / float64(len(h.bins))
	t50 := quantileTarget(0.50, dc)
	t95 := quantileTarget(0.95, dc)
	t99 := quantileTarget(0.99, dc)
	var cum uint64
	out := [3]float64{h.hi, h.hi, h.hi}
	targets := [3]uint64{t50, t95, t99}
	k := 0
	for i := range h.bins {
		d := h.bins[i] - prevBins[i]
		if d == 0 {
			continue
		}
		lo := cum
		cum += d
		for k < 3 && cum >= targets[k] {
			frac := float64(targets[k]-lo) / float64(d)
			out[k] = h.lo + width*(float64(i)+frac)
			k++
		}
		if k == 3 {
			break
		}
	}
	return out[0], out[1], out[2]
}

// quantileTarget returns the 1-based rank of the q-quantile among n
// observations (nearest-rank, ceil convention).
func quantileTarget(q float64, n uint64) uint64 {
	t := uint64(math.Ceil(q * float64(n)))
	if t < 1 {
		t = 1
	}
	if t > n {
		t = n
	}
	return t
}
