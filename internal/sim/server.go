package sim

// Server models a resource with fixed concurrency and FIFO queueing in
// simulated time — e.g. the limited ports of an LLC bank (Sec. VI-B), where
// queueing delay is precisely the side channel the port attack exploits.
type Server struct {
	eng      *Engine
	capacity int
	busy     int
	waiting  []pendingUse

	// TotalServed counts completed uses; TotalQueuedCycles accumulates the
	// cycles requests spent waiting before service (the port-contention
	// signal measured by Fig. 11).
	TotalServed       uint64
	TotalQueuedCycles uint64
}

type pendingUse struct {
	arrived  Time
	duration Time
	done     func()
}

// NewServer returns a server with the given concurrent capacity (number of
// ports). It panics if capacity is non-positive.
func NewServer(eng *Engine, capacity int) *Server {
	if capacity <= 0 {
		panic("sim: server capacity must be positive")
	}
	return &Server{eng: eng, capacity: capacity}
}

// Busy returns the number of in-service requests.
func (s *Server) Busy() int { return s.busy }

// QueueLen returns the number of requests waiting for a port.
func (s *Server) QueueLen() int { return len(s.waiting) }

// Use requests the server for `duration` cycles. When service completes,
// done is invoked (done may be nil). If all ports are busy the request
// waits in FIFO order; the wait is counted in TotalQueuedCycles.
func (s *Server) Use(duration Time, done func()) {
	if s.busy < s.capacity {
		s.start(duration, done)
		return
	}
	s.waiting = append(s.waiting, pendingUse{arrived: s.eng.Now(), duration: duration, done: done})
}

func (s *Server) start(duration Time, done func()) {
	s.busy++
	s.eng.Schedule(duration, func() {
		s.busy--
		s.TotalServed++
		if done != nil {
			done()
		}
		s.dispatch()
	})
}

func (s *Server) dispatch() {
	for s.busy < s.capacity && len(s.waiting) > 0 {
		next := s.waiting[0]
		s.waiting = s.waiting[1:]
		s.TotalQueuedCycles += uint64(s.eng.Now() - next.arrived)
		s.start(next.duration, next.done)
	}
}
