package sim

import (
	"context"
	"errors"
	"testing"
)

func TestRunAllCancel(t *testing.T) {
	var e Engine
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)

	// A self-rescheduling event would loop forever without cancellation.
	executed := 0
	var tick Event
	tick = func() {
		executed++
		if executed == 10 {
			cancel()
		}
		e.Schedule(1, tick)
	}
	e.Schedule(0, tick)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("canceled RunAll returned")
		}
		var cerr *CancelError
		err, ok := r.(error)
		if !ok || !errors.As(err, &cerr) {
			t.Fatalf("panicked with %v, want *CancelError", r)
		}
		if !errors.Is(cerr, context.Canceled) {
			t.Fatalf("cause = %v", cerr.Cause)
		}
		if executed < 10 {
			t.Fatalf("canceled after %d events, want at least 10", executed)
		}
	}()
	e.RunAll()
}

func TestRunCancelBeforeStart(t *testing.T) {
	var e Engine
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)
	e.Schedule(0, func() { t.Fatal("event ran after cancel") })
	defer func() {
		if recover() == nil {
			t.Fatal("pre-canceled Run returned")
		}
	}()
	e.Run(100)
}

func TestRunWithoutContextUnchanged(t *testing.T) {
	var e Engine
	ran := 0
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() { ran++ })
	}
	if got := e.RunAll(); got != 5 || ran != 5 {
		t.Fatalf("RunAll = %d (ran %d), want 5", got, ran)
	}
}
