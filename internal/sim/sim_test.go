package sim

import (
	"testing"
)

func TestEngineZeroValue(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Errorf("zero engine Now = %d", e.Now())
	}
	if e.Step() {
		t.Error("Step on empty engine should return false")
	}
}

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 3) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events out of order: %v", order)
	}
	if e.Now() != 20 {
		t.Errorf("final time = %d, want 20", e.Now())
	}
}

func TestFIFOAtSameCycle(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", order)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var e Engine
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() {
			times = append(times, e.Now())
		})
	})
	e.RunAll()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("nested scheduling times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i*10), func() { count++ })
	}
	n := e.Run(50)
	if n != 5 || count != 5 {
		t.Errorf("Run(50) executed %d events (count %d), want 5", n, count)
	}
	if e.Now() != 50 {
		t.Errorf("Now = %d, want 50", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", e.Pending())
	}
	// Running past the rest empties the queue and advances the clock to until.
	e.Run(1000)
	if e.Now() != 1000 || e.Pending() != 0 {
		t.Errorf("after Run(1000): now=%d pending=%d", e.Now(), e.Pending())
	}
}

func TestRunInclusiveAtBoundary(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(100, func() { ran = true })
	e.Run(100)
	if !ran {
		t.Error("event at exactly `until` did not run")
	}
}

func TestServerSinglePortQueues(t *testing.T) {
	var e Engine
	s := NewServer(&e, 1)
	var completions []Time
	record := func() { completions = append(completions, e.Now()) }
	// Three 10-cycle uses arriving at time 0 must finish at 10, 20, 30.
	s.Use(10, record)
	s.Use(10, record)
	s.Use(10, record)
	if s.Busy() != 1 || s.QueueLen() != 2 {
		t.Fatalf("busy=%d queue=%d, want 1 and 2", s.Busy(), s.QueueLen())
	}
	e.RunAll()
	want := []Time{10, 20, 30}
	for i, w := range want {
		if completions[i] != w {
			t.Errorf("completion %d at %d, want %d", i, completions[i], w)
		}
	}
	if s.TotalServed != 3 {
		t.Errorf("TotalServed = %d", s.TotalServed)
	}
	// Second waited 10, third waited 20.
	if s.TotalQueuedCycles != 30 {
		t.Errorf("TotalQueuedCycles = %d, want 30", s.TotalQueuedCycles)
	}
}

func TestServerMultiPort(t *testing.T) {
	var e Engine
	s := NewServer(&e, 2)
	var completions []Time
	record := func() { completions = append(completions, e.Now()) }
	s.Use(10, record)
	s.Use(10, record)
	s.Use(10, record)
	e.RunAll()
	// Two run in parallel (finish at 10), third starts at 10, ends at 20.
	if completions[0] != 10 || completions[1] != 10 || completions[2] != 20 {
		t.Errorf("completions = %v", completions)
	}
	if s.TotalQueuedCycles != 10 {
		t.Errorf("TotalQueuedCycles = %d, want 10", s.TotalQueuedCycles)
	}
}

func TestServerNilDone(t *testing.T) {
	var e Engine
	s := NewServer(&e, 1)
	s.Use(5, nil)
	e.RunAll()
	if s.TotalServed != 1 {
		t.Errorf("TotalServed = %d", s.TotalServed)
	}
}

func TestNewServerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewServer(0) should panic")
		}
	}()
	var e Engine
	NewServer(&e, 0)
}

func TestServerLateArrivalNoQueueing(t *testing.T) {
	var e Engine
	s := NewServer(&e, 1)
	s.Use(10, nil)
	e.Schedule(50, func() { s.Use(10, nil) })
	e.RunAll()
	if s.TotalQueuedCycles != 0 {
		t.Errorf("late arrival should not queue, got %d cycles", s.TotalQueuedCycles)
	}
	if e.Now() != 60 {
		t.Errorf("Now = %d, want 60", e.Now())
	}
}
