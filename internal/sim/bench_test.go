package sim

import "testing"

// BenchmarkEngineSchedule measures the event queue's push+pop round trip —
// the detailed simulator's innermost bookkeeping. Each iteration schedules a
// batch of events at scattered timestamps and drains them, so the number
// reflects steady-state heap churn (the attack experiments keep thousands of
// events in flight). allocs/op is the figure the typed-heap refactor targets:
// the container/heap implementation boxed one queuedEvent per push.
func BenchmarkEngineSchedule(b *testing.B) {
	const batch = 512
	var e Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			// Scattered delays exercise real sift-up/sift-down paths rather
			// than FIFO fast paths.
			e.Schedule(Time((j*2654435761)%1024), fn)
		}
		e.RunAll()
	}
	b.ReportMetric(batch, "events/op")
}
