// Package sim provides the discrete-event simulation engine underlying the
// detailed (cycle-level) part of the reproduction: cache banks with limited
// ports, NoC traversals, and the attack demonstrations all run on this
// engine. The large design-space sweeps use the epoch-based model in
// internal/system instead, which needs no event queue.
package sim

import (
	"context"
	"fmt"

	"jumanji/internal/obs"
)

// Time is simulation time in cycles.
type Time uint64

// cancelCheckEvery is how many dispatched events pass between context polls
// in Run/RunAll: frequent enough that a hard deadline cancels a detailed
// simulation within microseconds, rare enough that the per-event hot path
// stays a counter decrement.
const cancelCheckEvery = 4096

// Event is a callback scheduled to run at a point in simulated time.
type Event func()

type queuedEvent struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  Event
}

// before is the queue's strict total order: by timestamp, then FIFO among
// events at the same cycle. Because (at, seq) pairs are unique, any correct
// heap yields exactly one execution order.
func (ev queuedEvent) before(other queuedEvent) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

// eventQueue is a typed binary min-heap. container/heap's interface{} API
// boxed one queuedEvent per Push and per Pop — two allocations per event on
// the detailed simulator's innermost path — so the sift operations are
// implemented directly instead.
type eventQueue []queuedEvent

func (q eventQueue) siftUp(i int) {
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.before(q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

func (q eventQueue) siftDown(i int) {
	ev := q[i]
	n := len(q)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q[r].before(q[child]) {
			child = r
		}
		if !q[child].before(ev) {
			break
		}
		q[i] = q[child]
		i = child
	}
	q[i] = ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engines are not safe for concurrent use; the detailed simulator is
// single-threaded by design so results are exactly reproducible.
type Engine struct {
	now    Time
	nextID uint64
	queue  eventQueue
	spans  *obs.Spans
	ctx    context.Context
}

// CancelError is the panic payload when a drain loop observes the engine's
// context done: the simulated time reached and the cancellation cause.
type CancelError struct {
	Now   Time
	Cause error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("sim: run canceled at cycle %d: %v", e.Now, e.Cause)
}

func (e *CancelError) Unwrap() error { return e.Cause }

// SetContext attaches a cancellation context: Run and RunAll poll it every
// few thousand events and panic with a *CancelError once it is done. This is
// how the harness's hard per-cell deadline unwinds a wedged detailed
// simulation. A nil ctx (the default) is never polled.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// pollCancel panics if the engine's context is done.
func (e *Engine) pollCancel() {
	if e.ctx == nil {
		return
	}
	if err := e.ctx.Err(); err != nil {
		panic(&CancelError{Now: e.now, Cause: err})
	}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// SetSpans attaches wall-clock phase timers: each Run/RunAll drain is
// recorded under the "sim.run" phase. A nil spans (the default) keeps the
// engine timer-free; event dispatch itself is never instrumented, so the
// per-event hot path is identical either way.
func (e *Engine) SetSpans(s *obs.Spans) { e.spans = s }

// Schedule runs fn after delay cycles (delay 0 means later in the current
// cycle, after already-queued events for this cycle).
func (e *Engine) Schedule(delay Time, fn Event) {
	e.nextID++
	e.queue = append(e.queue, queuedEvent{at: e.now + delay, seq: e.nextID, fn: fn})
	e.queue.siftUp(len(e.queue) - 1)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the single earliest event, advancing the clock to its
// timestamp. It returns false if no events are pending.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue[0]
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = queuedEvent{} // release the event closure to the GC
	e.queue = e.queue[:n]
	if n > 0 {
		e.queue.siftDown(0)
	}
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the clock passes `until`.
// Events scheduled at exactly `until` still run. It returns the number of
// events executed.
func (e *Engine) Run(until Time) int {
	var sp obs.Span
	if e.spans != nil {
		sp = e.spans.Start("sim.run")
	}
	executed := 0
	for len(e.queue) > 0 && e.queue[0].at <= until {
		if e.ctx != nil && executed%cancelCheckEvery == 0 {
			e.pollCancel()
		}
		e.Step()
		executed++
	}
	if e.now < until && len(e.queue) == 0 {
		e.now = until
	}
	sp.Stop()
	return executed
}

// RunAll executes all pending events (including ones scheduled by other
// events) and returns how many ran. Use with care: a self-rescheduling
// event makes this loop forever, so periodic processes should be driven
// with Run(until) instead.
func (e *Engine) RunAll() int {
	var sp obs.Span
	if e.spans != nil {
		sp = e.spans.Start("sim.run")
	}
	executed := 0
	for {
		if e.ctx != nil && executed%cancelCheckEvery == 0 {
			e.pollCancel()
		}
		if !e.Step() {
			break
		}
		executed++
	}
	sp.Stop()
	return executed
}
