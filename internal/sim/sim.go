// Package sim provides the discrete-event simulation engine underlying the
// detailed (cycle-level) part of the reproduction: cache banks with limited
// ports, NoC traversals, and the attack demonstrations all run on this
// engine. The large design-space sweeps use the epoch-based model in
// internal/system instead, which needs no event queue.
package sim

import "container/heap"

// Time is simulation time in cycles.
type Time uint64

// Event is a callback scheduled to run at a point in simulated time.
type Event func()

type queuedEvent struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  Event
}

type eventQueue []queuedEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(queuedEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engines are not safe for concurrent use; the detailed simulator is
// single-threaded by design so results are exactly reproducible.
type Engine struct {
	now    Time
	nextID uint64
	queue  eventQueue
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay cycles (delay 0 means later in the current
// cycle, after already-queued events for this cycle).
func (e *Engine) Schedule(delay Time, fn Event) {
	e.nextID++
	heap.Push(&e.queue, queuedEvent{at: e.now + delay, seq: e.nextID, fn: fn})
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the single earliest event, advancing the clock to its
// timestamp. It returns false if no events are pending.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(queuedEvent)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the clock passes `until`.
// Events scheduled at exactly `until` still run. It returns the number of
// events executed.
func (e *Engine) Run(until Time) int {
	executed := 0
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
		executed++
	}
	if e.now < until && len(e.queue) == 0 {
		e.now = until
	}
	return executed
}

// RunAll executes all pending events (including ones scheduled by other
// events) and returns how many ran. Use with care: a self-rescheduling
// event makes this loop forever, so periodic processes should be driven
// with Run(until) instead.
func (e *Engine) RunAll() int {
	executed := 0
	for e.Step() {
		executed++
	}
	return executed
}
