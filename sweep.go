package jumanji

import (
	"context"
	"fmt"

	"jumanji/internal/obs"
	"jumanji/internal/sweep"
	"jumanji/internal/system"
)

// TailPoint is one point of the Fig. 8 sweep: the latency-critical
// application's normalized p95 tail latency at a fixed LLC allocation,
// placed S-NUCA (striped, way-partitioned) vs D-NUCA (nearest banks).
type TailPoint struct {
	AllocMB       float64
	NormTailSNUCA float64
	NormTailDNUCA float64
}

// TailVsAllocation reproduces Fig. 8: it runs the named latency-critical
// application alone at high load with fixed allocations and reports the
// normalized tail for both placements. Values above 1 violate the
// deadline; the D-NUCA column should cross below 1 at a smaller allocation
// than the S-NUCA column.
//
// The sweep points are independent, so they fan across opts.Parallel
// workers; per-point observability sinks merge back in sweep order. With
// opts.Engine set, completed points are journalled and a degraded sweep
// returns a *sweep.RunError.
func TailVsAllocation(opts Options, latCrit string, allocsMB []float64) (out []TailPoint, err error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(allocsMB) == 0 {
		return nil, fmt.Errorf("jumanji: no allocations to sweep")
	}
	for _, mb := range allocsMB {
		if mb <= 0 {
			return nil, fmt.Errorf("jumanji: non-positive allocation %g MB", mb)
		}
	}
	wl, err := system.BuildVMWorkload(opts.systemConfig().Machine,
		[]system.VMSpec{{LatCrit: []string{latCrit}}}, nil, true)
	if err != nil {
		return nil, err
	}
	defer recoverSweep(&err)
	out = sweep.Cells(opts.Engine, opts.sinks(), "tailvsalloc/"+latCrit,
		opts.Seed, opts.Parallel, len(allocsMB),
		func(i int, c *obs.Cell, ctx context.Context) TailPoint {
			co := opts
			co.Parallel = 1
			co.Metrics, co.Events, co.Trace = c.Metrics, c.Events, c.Trace
			if ctx != nil {
				co.Ctx = ctx
			}
			cfg := co.systemConfig()
			bytes := allocsMB[i] * (1 << 20)
			s := system.RunFixedLat(cfg, wl, bytes, false, opts.Epochs, opts.Warmup)
			d := system.RunFixedLat(cfg, wl, bytes, true, opts.Epochs, opts.Warmup)
			return TailPoint{
				AllocMB:       allocsMB[i],
				NormTailSNUCA: s.Apps[0].NormTail,
				NormTailDNUCA: d.Apps[0].NormTail,
			}
		})
	return out, err
}
