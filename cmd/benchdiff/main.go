// Command benchdiff guards the repository's benchmark baselines: it runs
// the baseline's benchmarks via `go test -bench`, compares the measured
// ns/op and allocs/op against the committed BENCH_*.json values, and exits
// nonzero when any metric regresses past the tolerance.
//
// Examples:
//
//	benchdiff                                # gate on BENCH_dense.json, ±25%
//	benchdiff -baseline BENCH_parallel.json -tolerance 0.5
//	go test -bench . ./... | tee out.txt; benchdiff -input out.txt
//
// Exit status: 0 when every compared metric is within tolerance, 1 on
// regression, 2 on usage or execution errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"

	"jumanji/internal/benchdiff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline  = fs.String("baseline", "BENCH_dense.json", "committed baseline file to compare against")
		tolerance = fs.Float64("tolerance", 0.25, "allowed fractional slowdown before a metric counts as regressed")
		input     = fs.String("input", "", "parse pre-recorded `go test -bench` output from this file instead of running benchmarks")
		benchtime = fs.String("benchtime", "", "-benchtime passed through to `go test` (default: go's 1s)")
		count     = fs.Int("count", 3, "-count passed through to `go test`; benchdiff keeps each metric's minimum across runs to shed scheduler noise")
		pkg       = fs.String("pkg", "./...", "package pattern benchmarks are run in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tolerance < 0 {
		fmt.Fprintln(stderr, "benchdiff: -tolerance must be >= 0")
		return 2
	}

	base, err := benchdiff.LoadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	// Timing baselines only transfer between hosts of the same shape:
	// parallel benchmarks recorded on a 1-core box are meaningless targets
	// on 16 cores and vice versa. Skip (don't fail) on a mismatch so CI
	// stays green on whatever runner it lands on.
	if cores := runtime.GOMAXPROCS(0); base.HostCores > 0 && base.HostCores != cores {
		fmt.Fprintf(stdout, "benchdiff: skipping %s: baseline recorded on %d core(s), this host has GOMAXPROCS=%d; re-record on a matching host to re-enable the gate\n",
			base.Path, base.HostCores, cores)
		return 0
	}

	var benchOut io.Reader
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		defer f.Close()
		benchOut = f
	} else {
		cmdArgs := []string{"test", "-run", "^$", "-bench", base.BenchRegexp(), "-benchmem", fmt.Sprintf("-count=%d", *count)}
		if *benchtime != "" {
			cmdArgs = append(cmdArgs, "-benchtime", *benchtime)
		}
		cmdArgs = append(cmdArgs, *pkg)
		fmt.Fprintf(stderr, "benchdiff: go %s\n", joinArgs(cmdArgs))
		cmd := exec.Command("go", cmdArgs...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(stderr, "benchdiff: go test:", err)
			return 2
		}
		benchOut = &out
	}

	got, err := benchdiff.ParseBenchOutput(benchOut)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark results in input")
		return 2
	}

	deltas := benchdiff.Compare(base, got, *tolerance)
	extra := benchdiff.Extra(base, got)
	if len(deltas) == 0 && len(extra) == 0 {
		fmt.Fprintf(stderr, "benchdiff: no overlap between %s and the measured benchmarks\n", base.Path)
		return 2
	}
	fmt.Fprintf(stdout, "benchdiff: %s vs measured (tolerance %.0f%%)\n", base.Path, *tolerance*100)
	regressions := 0
	for _, d := range deltas {
		if d.Regressed {
			regressions++
		}
		fmt.Fprintln(stdout, " ", d)
	}
	for _, name := range benchdiff.Missing(base, got) {
		fmt.Fprintf(stdout, "  %-45s %-10s (in baseline, not measured)\n", name, "-")
	}
	// New benchmarks are reported, not gated: a measurement with no base
	// entry has nothing to regress against until its baseline is recorded.
	for _, name := range extra {
		fmt.Fprintf(stdout, "  %-45s %-10s (missing in baseline)\n", name, "-")
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d metric(s) regressed beyond %.0f%%\n", regressions, *tolerance*100)
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: ok")
	return 0
}

func joinArgs(args []string) string {
	var b bytes.Buffer
	for i, a := range args {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a)
	}
	return b.String()
}
