package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeFiles drops a baseline and a pre-recorded bench-output file into a
// temp dir and returns their paths.
func writeFiles(t *testing.T, baseline, benchOut string) (basePath, inputPath string) {
	t.Helper()
	dir := t.TempDir()
	basePath = filepath.Join(dir, "bench.json")
	inputPath = filepath.Join(dir, "out.txt")
	if err := os.WriteFile(basePath, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inputPath, []byte(benchOut), 0o644); err != nil {
		t.Fatal(err)
	}
	return basePath, inputPath
}

const baseline = `{"results": {"BenchmarkKnown": {"ns_per_op": 1000, "allocs_per_op": 0}}}`

func TestRunReportsNewBenchmarkInsteadOfFailing(t *testing.T) {
	base, input := writeFiles(t, baseline,
		"BenchmarkKnown-4 10 990 ns/op 0 B/op 0 allocs/op\n"+
			"BenchmarkBrandNew-4 10 5 ns/op 0 B/op 0 allocs/op\n")
	var stdout, stderr strings.Builder
	rc := run([]string{"-baseline", base, "-input", input}, &stdout, &stderr)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkBrandNew") ||
		!strings.Contains(stdout.String(), "(missing in baseline)") {
		t.Errorf("new benchmark not reported:\n%s", stdout.String())
	}
}

func TestRunOnlyNewBenchmarksStillPasses(t *testing.T) {
	base, input := writeFiles(t, baseline,
		"BenchmarkBrandNew-4 10 5 ns/op 0 B/op 0 allocs/op\n")
	var stdout, stderr strings.Builder
	rc := run([]string{"-baseline", base, "-input", input}, &stdout, &stderr)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0 when only unbaselined benchmarks ran; stderr: %s", rc, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "(missing in baseline)") || !strings.Contains(out, "(in baseline, not measured)") {
		t.Errorf("report should list both sides of the mismatch:\n%s", out)
	}
}

func TestRunEmptyInputFails(t *testing.T) {
	base, input := writeFiles(t, baseline, "PASS\nok pkg 0.1s\n")
	var stdout, stderr strings.Builder
	if rc := run([]string{"-baseline", base, "-input", input}, &stdout, &stderr); rc != 2 {
		t.Fatalf("rc = %d, want 2 for input with no benchmark lines", rc)
	}
}

func TestRunRegressionStillFails(t *testing.T) {
	base, input := writeFiles(t, baseline,
		"BenchmarkKnown-4 10 990 ns/op 16 B/op 1 allocs/op\n"+
			"BenchmarkBrandNew-4 10 5 ns/op 0 B/op 0 allocs/op\n")
	var stdout, stderr strings.Builder
	if rc := run([]string{"-baseline", base, "-input", input}, &stdout, &stderr); rc != 1 {
		t.Fatalf("rc = %d, want 1: the 0->1 allocs/op regression must still gate", rc)
	}
}

// Host-shape gating: a baseline recorded with a different core count than
// the current GOMAXPROCS is skipped with an informational line, not failed —
// timing targets don't transfer across host shapes.
func TestRunSkipsBaselineFromDifferentHostShape(t *testing.T) {
	otherCores := runtime.GOMAXPROCS(0) + 7
	base, input := writeFiles(t,
		fmt.Sprintf(`{"host": {"cores": %d}, "results": {"BenchmarkKnown": {"ns_per_op": 1000}}}`, otherCores),
		"BenchmarkKnown-4 10 99999999 ns/op\n") // would be a huge regression if compared
	var stdout, stderr strings.Builder
	rc := run([]string{"-baseline", base, "-input", input}, &stdout, &stderr)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0 (skip); stderr: %s", rc, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "skipping") || !strings.Contains(out, "GOMAXPROCS") {
		t.Errorf("expected a skip info line, got:\n%s", out)
	}
	if strings.Contains(out, "regressed") {
		t.Errorf("mismatched-host baseline must not be compared:\n%s", out)
	}
}

func TestRunComparesWhenHostShapeMatches(t *testing.T) {
	base, input := writeFiles(t,
		fmt.Sprintf(`{"host": {"cores": %d}, "results": {"BenchmarkKnown": {"ns_per_op": 1000}}}`, runtime.GOMAXPROCS(0)),
		"BenchmarkKnown-4 10 99999999 ns/op\n")
	var stdout, stderr strings.Builder
	if rc := run([]string{"-baseline", base, "-input", input}, &stdout, &stderr); rc != 1 {
		t.Fatalf("rc = %d, want 1 (regression must still gate on a matching host); stdout:\n%s", rc, stdout.String())
	}
}
