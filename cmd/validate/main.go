// Command validate cross-checks the analytic epoch model against the
// detailed trace-driven simulator: it runs four applications with distinct
// reuse patterns (uniform working set, streaming scan, Zipfian, pointer
// chase) through the full cache hierarchy under a real placer, then
// compares the model's two load-bearing predictions — miss ratio at the
// granted allocation, and NoC distance to data — against what the caches
// actually did. Small errors here are what justify using the fast epoch
// model for the paper's large sweeps (DESIGN.md §1).
//
// The run is instrumented with a metric registry (internal/obs) and also
// cross-checks the instrumentation itself: the registry's per-bank miss
// counters, summed, must equal the hierarchy's memory-load total.
package main

import (
	"flag"
	"fmt"
	"os"

	"jumanji/internal/core"
	"jumanji/internal/driver"
	"jumanji/internal/obs"
)

func main() {
	var (
		placerName = flag.String("placer", "jumanji", "placer to validate under: jumanji, jigsaw")
		epochs     = flag.Int("epochs", 6, "reconfiguration epochs to run")
	)
	flag.Parse()

	var placer core.Placer
	switch *placerName {
	case "jumanji":
		placer = core.JumanjiPlacer{}
	case "jigsaw":
		placer = core.JigsawPlacer{}
	default:
		fmt.Fprintf(os.Stderr, "validate: unknown placer %q\n", *placerName)
		os.Exit(2)
	}

	cfg := driver.StandardValidationConfig(placer)
	cfg.Metrics = obs.NewRegistry()
	d, err := driver.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	rows := driver.ValidateDriver(d, *epochs)
	fmt.Printf("Detailed-vs-model cross-check under %s (%d epochs):\n\n", placer.Name(), *epochs)
	driver.RenderValidation(os.Stdout, rows)
	fmt.Println()
	fmt.Println("miss(pred): UMON-profiled curve evaluated at the granted allocation")
	fmt.Println("miss(meas): actual LLC miss ratio in the trace-driven hierarchy")
	fmt.Println("hops(pred): capacity-weighted placement distance; hops(meas): NoC ground truth")
	fmt.Println()
	if err := d.CheckCounters(); err != nil {
		fmt.Fprintln(os.Stderr, "validate: instrumentation cross-check FAILED:", err)
		os.Exit(1)
	}
	loads := cfg.Metrics.Counter("cache.mem.loads").Value()
	fmt.Printf("instrumentation cross-check OK: Σ per-bank misses == mem loads == %d\n", loads)
}
