package main

import (
	"encoding/json"
	"fmt"
	"sort"

	"jumanji/internal/obs"
)

// provAgg accumulates the provenance log's aggregates while the file
// streams through obs.DecodeEvents, so a multi-GB -provenance log never
// has to fit in memory: state is bounded by designs × VMs × epochs, not
// by record count.
type provAgg struct {
	Records, Valves int

	vms    map[provVMKey]*vmProv
	order  []provVMKey
	banks  map[int]*bankContest
	valveN map[provValveKey]int
	// valvesAt indexes fired valves by (design, vm, epoch) so move diffs
	// can say which fallback applied to the epoch a VM moved in. Run-wide
	// valves land under VM -1.
	valvesAt map[provAtKey][]string
}

type provVMKey struct {
	Design string
	VM     int
}

type provValveKey struct {
	Design, Valve string
}

type provAtKey struct {
	Design string
	VM     int
	Epoch  int
}

type vmProv struct {
	epochs  []int // recorded epochs, in log order
	byEpoch map[int]*vmEpochProv
}

type vmEpochProv struct {
	decisions  int
	candidates int
	truncated  int
	banks      map[int]struct{} // banks granted this epoch (all stages)
	stages     map[string]int
	elim       map[string]int
}

type bankContest struct {
	Bank      int
	Granted   int
	Contested int
	byReason  map[string]int
}

func (p *provAgg) add(ev obs.Event) error {
	switch ev.Type {
	case obs.TypePlacementDecision:
		var d obs.PlacementDecision
		if err := json.Unmarshal(ev.Data, &d); err != nil {
			return fmt.Errorf("placement_decision seq %d: %w", ev.Seq, err)
		}
		p.Records++
		k := provVMKey{Design: d.Design, VM: d.VM}
		v := p.vms[k]
		if v == nil {
			if p.vms == nil {
				p.vms = make(map[provVMKey]*vmProv)
			}
			v = &vmProv{byEpoch: make(map[int]*vmEpochProv)}
			p.vms[k] = v
			p.order = append(p.order, k)
		}
		ep := v.byEpoch[d.Epoch]
		if ep == nil {
			ep = &vmEpochProv{
				banks:  make(map[int]struct{}),
				stages: make(map[string]int),
				elim:   make(map[string]int),
			}
			v.byEpoch[d.Epoch] = ep
			v.epochs = append(v.epochs, d.Epoch)
		}
		ep.decisions++
		ep.stages[d.Stage]++
		ep.truncated += d.Truncated
		for _, c := range d.Candidates {
			ep.candidates++
			if c.Eliminated != "" {
				ep.elim[c.Eliminated]++
			}
			// The region-assignment stage's "banks" are region IDs; mixing
			// them into the per-bank contest table would alias real banks.
			if d.Stage == obs.StageRegionAssign {
				continue
			}
			b := p.banks[c.Bank]
			if b == nil {
				if p.banks == nil {
					p.banks = make(map[int]*bankContest)
				}
				b = &bankContest{Bank: c.Bank, byReason: make(map[string]int)}
				p.banks[c.Bank] = b
			}
			if c.Eliminated != "" {
				b.Contested++
				b.byReason[c.Eliminated]++
			} else if c.TakenBytes > 0 {
				b.Granted++
				ep.banks[c.Bank] = struct{}{}
			}
		}
	case obs.TypePlacementValve:
		var v obs.PlacementValve
		if err := json.Unmarshal(ev.Data, &v); err != nil {
			return fmt.Errorf("placement_valve seq %d: %w", ev.Seq, err)
		}
		p.Valves++
		if p.valveN == nil {
			p.valveN = make(map[provValveKey]int)
			p.valvesAt = make(map[provAtKey][]string)
		}
		p.valveN[provValveKey{Design: v.Design, Valve: v.Valve}]++
		at := provAtKey{Design: v.Design, VM: v.VM, Epoch: v.Epoch}
		p.valvesAt[at] = append(p.valvesAt[at], v.Valve)
	}
	return nil
}

// Report rows derived from the aggregate (see buildProvenance).
type provVMRow struct {
	Design     string
	VM         int
	Epoch      int // newest recorded epoch
	Epochs     int // epochs with recorded decisions
	Decisions  int
	Banks      []int
	Candidates int
	Eliminated map[string]int
	Truncated  int
	Stages     map[string]int
}

type provBankRow struct {
	Bank      int
	Granted   int
	Contested int
	ByReason  map[string]int
}

type provMoveRow struct {
	Design       string
	VM           int
	Epoch        int
	Gained, Lost []int
	Why          string
}

type provValveRow struct {
	Design, Valve string
	Count         int
}

// buildProvenance derives the report's provenance sections from the
// streamed aggregate. Pure and order-deterministic: rows follow the log's
// first-appearance order or explicit sort keys, never map iteration.
func buildProvenance(rep *report, p *provAgg, topK int) {
	if p == nil || (p.Records == 0 && p.Valves == 0) {
		return
	}

	for _, k := range p.order {
		v := p.vms[k]
		newest := v.epochs[len(v.epochs)-1]
		ep := v.byEpoch[newest]
		rep.ProvVMs = append(rep.ProvVMs, provVMRow{
			Design: k.Design, VM: k.VM,
			Epoch: newest, Epochs: len(v.epochs),
			Decisions: ep.decisions, Banks: sortedKeys(ep.banks),
			Candidates: ep.candidates, Eliminated: ep.elim,
			Truncated: ep.truncated, Stages: ep.stages,
		})
	}

	banks := make([]provBankRow, 0, len(p.banks))
	for _, b := range p.banks {
		banks = append(banks, provBankRow{Bank: b.Bank, Granted: b.Granted, Contested: b.Contested, ByReason: b.byReason})
	}
	// Most-contested first; bank index breaks ties so the bytes are stable.
	sort.Slice(banks, func(i, j int) bool {
		if banks[i].Contested != banks[j].Contested {
			return banks[i].Contested > banks[j].Contested
		}
		return banks[i].Bank < banks[j].Bank
	})
	if topK >= 0 && len(banks) > topK {
		banks = banks[:topK]
	}
	rep.ProvBanks = banks

	var moves []provMoveRow
	for _, k := range p.order {
		v := p.vms[k]
		for i := 1; i < len(v.epochs); i++ {
			prev, cur := v.byEpoch[v.epochs[i-1]], v.byEpoch[v.epochs[i]]
			gained, lost := diffBanks(prev.banks, cur.banks)
			if len(gained) == 0 && len(lost) == 0 {
				continue
			}
			moves = append(moves, provMoveRow{
				Design: k.Design, VM: k.VM, Epoch: v.epochs[i],
				Gained: gained, Lost: lost,
				Why: moveWhy(p, k, v.epochs[i], cur),
			})
		}
	}
	// Biggest moves first, bounded like the other top-k tables.
	sort.SliceStable(moves, func(i, j int) bool {
		si, sj := len(moves[i].Gained)+len(moves[i].Lost), len(moves[j].Gained)+len(moves[j].Lost)
		if si != sj {
			return si > sj
		}
		a, b := moves[i], moves[j]
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.VM != b.VM {
			return a.VM < b.VM
		}
		return a.Epoch < b.Epoch
	})
	if topK >= 0 && len(moves) > topK {
		moves = moves[:topK]
	}
	rep.ProvMoves = moves

	valves := make([]provValveRow, 0, len(p.valveN))
	for k, n := range p.valveN {
		valves = append(valves, provValveRow{Design: k.Design, Valve: k.Valve, Count: n})
	}
	sort.Slice(valves, func(i, j int) bool {
		if valves[i].Design != valves[j].Design {
			return valves[i].Design < valves[j].Design
		}
		return valves[i].Valve < valves[j].Valve
	})
	rep.ProvValves = valves
}

// moveWhy summarizes why a VM's banks changed at this epoch: the epoch's
// elimination pressure plus any valves that fired for the VM (or run-wide)
// under the same design.
func moveWhy(p *provAgg, k provVMKey, epoch int, ep *vmEpochProv) string {
	why := causeSummary(ep.elim)
	var fired []string
	fired = append(fired, p.valvesAt[provAtKey{Design: k.Design, VM: k.VM, Epoch: epoch}]...)
	fired = append(fired, p.valvesAt[provAtKey{Design: k.Design, VM: -1, Epoch: epoch}]...)
	if len(fired) > 0 {
		sort.Strings(fired)
		fv := "valves: " + fired[0]
		for _, f := range fired[1:] {
			fv += ", " + f
		}
		if why != "" {
			why += "; " + fv
		} else {
			why = fv
		}
	}
	if why == "" {
		why = "allocation resize only"
	}
	return why
}

func sortedKeys(set map[int]struct{}) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func diffBanks(prev, cur map[int]struct{}) (gained, lost []int) {
	for b := range cur {
		if _, ok := prev[b]; !ok {
			gained = append(gained, b)
		}
	}
	for b := range prev {
		if _, ok := cur[b]; !ok {
			lost = append(lost, b)
		}
	}
	sort.Ints(gained)
	sort.Ints(lost)
	return gained, lost
}

// intList renders a short sorted bank list, eliding long ones.
func intList(vals []int) string {
	if len(vals) == 0 {
		return "-"
	}
	const maxShown = 8
	s := ""
	for i, v := range vals {
		if i == maxShown {
			return fmt.Sprintf("%s, … (%d total)", s, len(vals))
		}
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d", v)
	}
	return s
}
