package main

import (
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strings"
)

// num renders a value compactly and deterministically.
func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// ms renders a recorded simulated time (µs) as milliseconds.
func ms(us float64) string { return fmt.Sprintf("%.1f ms", us/1e3) }

// sparkRunes renders values as a unicode sparkline, scaled to their own
// min..max (a flat series renders as all-low).
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

func causeSummary(byCause map[string]int) string {
	causes := make([]string, 0, len(byCause))
	for c := range byCause {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	parts := make([]string, len(causes))
	for i, c := range causes {
		parts[i] = fmt.Sprintf("%s×%d", c, byCause[c])
	}
	return strings.Join(parts, ", ")
}

func dominantShare(v violationRow) string {
	bd := v.Breakdown
	total := bd.BaseCycles + bd.BankCycles + bd.NoCCycles + bd.MemCycles + bd.QueueCycles
	if total <= 0 {
		return "-"
	}
	comp := map[string]float64{
		"bank": bd.BankCycles, "noc": bd.NoCCycles,
		"mem": bd.MemCycles, "queue": bd.QueueCycles,
	}[v.Dominant]
	return pct(comp / total)
}

// renderMarkdown writes the report as GitHub-flavored markdown.
func renderMarkdown(w io.Writer, rep *report) error {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	p("# %s\n\n", rep.Title)
	p("## Inputs\n\n")
	for _, in := range rep.Inputs {
		p("- **%s** `%s` — %s\n", in.Kind, in.Name, in.Summary)
	}
	p("\n")

	if len(rep.Runs) > 0 {
		p("## SLO timeline\n\n")
		p("Worst per-epoch latency/deadline per design; values above 1 are violations.\n\n")
		p("| design | epochs | lc apps | reconfigs | violation epochs | worst lat/deadline | worst norm tail | batch speedup | timeline |\n")
		p("|---|---|---|---|---|---|---|---|---|\n")
		for _, r := range rep.Runs {
			p("| %s | %d (warmup %d) | %d/%d | %d | %d | %s | %s | %s | `%s` |\n",
				r.Design, r.Epochs, r.Warmup, r.LatCrit, r.Apps, r.Reconfigs,
				r.ViolationEpochs, num(r.WorstLatNorm), num(r.WorstNormTail),
				num(r.BatchSpeedup), sparkline(r.Timeline))
		}
		p("\n")
	}

	if len(rep.Churn) > 0 {
		p("## Reconfiguration churn\n\n")
		p("| design | reconfigs | causes | moved fraction (mean / max) | worst at | moved MB | invalidated lines |\n")
		p("|---|---|---|---|---|---|---|\n")
		for _, c := range rep.Churn {
			p("| %s | %d | %s | %s / %s | epoch %d (%s) | %s | %s |\n",
				c.Design, c.Reconfigs, causeSummary(c.ByCause),
				pct(c.MeanMoved), pct(c.MaxMoved), c.MaxMovedEpoch, ms(c.MaxMovedTimeUs),
				num(c.MovedMB), num(c.Invalidated))
		}
		p("\n")
	}

	if len(rep.TopViolations) > 0 {
		p("## Top SLO-violation attributions\n\n")
		p("| design | epoch | time | app | lat/deadline | slack (cycles) | dominant | dominant share | alloc MB |\n")
		p("|---|---|---|---|---|---|---|---|---|\n")
		for _, v := range rep.TopViolations {
			p("| %s | %d | %s | %s | %s | %s | %s | %s | %s |\n",
				v.Design, v.Epoch, ms(v.TimeUs), v.Name, num(v.LatNorm),
				num(v.SlackCycles), v.Dominant, dominantShare(v), num(v.AllocBytes/(1<<20)))
		}
		p("\n")
	}

	if len(rep.Alerts) > 0 {
		p("## Alerts (replayed over recorded series)\n\n")
		for _, a := range rep.Alerts {
			p("- **%s** `%s` epoch %d: %s\n", a.Rule, a.Series, a.Epoch, a.Message)
		}
		p("\n")
	}

	if len(rep.Series) > 0 {
		p("## Recorded time series\n\n")
		p("| series | samples | min | mean | max | last | tail |\n")
		p("|---|---|---|---|---|---|---|\n")
		for _, s := range rep.Series {
			name := s.Name
			if s.Dropped > 0 {
				name = fmt.Sprintf("%s (+%d evicted)", name, s.Dropped)
			}
			p("| %s | %d | %s | %s | %s | %s | `%s` |\n",
				name, s.Samples, num(s.Min), num(s.Mean), num(s.Max), num(s.Last), sparkline(s.Timeline))
		}
		p("\n")
	}

	if len(rep.Spans) > 0 {
		p("## Span summary\n\n")
		p("| phase | count | total ms | mean ms | share |\n")
		p("|---|---|---|---|---|\n")
		for _, s := range rep.Spans {
			p("| %s | %d | %s | %s | %s |\n", s.Name, s.Count, num(s.TotalMs), num(s.MeanMs), pct(s.Share))
		}
		p("\n")
	}

	if len(rep.Journal) > 0 {
		p("## Journalled cells\n\n")
		p("| sweep | cells | payload bytes |\n")
		p("|---|---|---|\n")
		for _, j := range rep.Journal {
			p("| %s | %d | %d |\n", j.Label, j.Cells, j.Bytes)
		}
		p("\n")
	}

	if len(rep.ProvVMs) > 0 {
		p("## Placement provenance\n\n")
		p("Why each VM landed where it did, from the `-provenance` log.\n\n")
		p("### Per-VM placement rationale (newest recorded reconfiguration)\n\n")
		p("| design | vm | epoch | reconfigs | decisions | stages | banks | candidates | eliminated | truncated |\n")
		p("|---|---|---|---|---|---|---|---|---|---|\n")
		for _, r := range rep.ProvVMs {
			p("| %s | %d | %d | %d | %d | %s | %s | %d | %s | %d |\n",
				r.Design, r.VM, r.Epoch, r.Epochs, r.Decisions, causeSummary(r.Stages),
				intList(r.Banks), r.Candidates, causeSummary(r.Eliminated), r.Truncated)
		}
		p("\n")
	}
	if len(rep.ProvBanks) > 0 {
		p("### Most-contested banks\n\n")
		p("Banks that lost the most placement contests (an eliminated candidate entry each).\n\n")
		p("| bank | granted | contested | reasons |\n")
		p("|---|---|---|---|\n")
		for _, r := range rep.ProvBanks {
			p("| %d | %d | %d | %s |\n", r.Bank, r.Granted, r.Contested, causeSummary(r.ByReason))
		}
		p("\n")
	}
	if len(rep.ProvMoves) > 0 {
		p("### Placement moves (why did VM X move?)\n\n")
		p("| design | vm | epoch | gained banks | lost banks | why |\n")
		p("|---|---|---|---|---|---|\n")
		for _, r := range rep.ProvMoves {
			p("| %s | %d | %d | %s | %s | %s |\n",
				r.Design, r.VM, r.Epoch, intList(r.Gained), intList(r.Lost), r.Why)
		}
		p("\n")
	}
	if len(rep.ProvValves) > 0 {
		p("### Fallback valves fired\n\n")
		p("| design | valve | count |\n")
		p("|---|---|---|\n")
		for _, r := range rep.ProvValves {
			p("| %s | %s | %d |\n", r.Design, r.Valve, r.Count)
		}
		p("\n")
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// svgSpark renders a timeline as an inline SVG polyline with a deadline
// rule at y=1 when the data crosses it.
func svgSpark(vals []float64, deadline bool) string {
	if len(vals) == 0 {
		return ""
	}
	const W, H = 240, 36
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if deadline {
		lo, hi = math.Min(lo, 1), math.Max(hi, 1)
	}
	if hi == lo {
		hi = lo + 1
	}
	x := func(i int) float64 {
		if len(vals) == 1 {
			return 0
		}
		return float64(i) / float64(len(vals)-1) * W
	}
	y := func(v float64) float64 { return H - (v-lo)/(hi-lo)*(H-2) - 1 }
	var pts strings.Builder
	for i, v := range vals {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x(i), y(v))
	}
	rule := ""
	if deadline {
		fy := y(1)
		rule = fmt.Sprintf(`<line x1="0" y1="%.1f" x2="%d" y2="%.1f" stroke="#c33" stroke-dasharray="3,3"/>`, fy, W, fy)
	}
	return fmt.Sprintf(`<svg width="%d" height="%d" viewBox="0 0 %d %d">%s<polyline points="%s" fill="none" stroke="#369" stroke-width="1.5"/></svg>`,
		W, H, W, H, rule, pts.String())
}

// renderHTML writes the report as one self-contained HTML page (inline
// style, inline SVG sparklines, no external references).
func renderHTML(w io.Writer, rep *report) error {
	var b strings.Builder
	p := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }
	esc := html.EscapeString

	p("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>%s</title>\n", esc(rep.Title))
	p(`<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 72em; padding: 0 1em; color: #222; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; }
th { background: #f4f4f4; }
td.n { text-align: right; font-variant-numeric: tabular-nums; }
h1 { border-bottom: 2px solid #369; padding-bottom: 0.2em; }
h2 { margin-top: 1.5em; }
code { background: #f4f4f4; padding: 0 0.25em; }
.alert { color: #a00; }
</style>
</head>
<body>
`)
	p("<h1>%s</h1>\n", esc(rep.Title))

	p("<h2>Inputs</h2>\n<ul>\n")
	for _, in := range rep.Inputs {
		p("<li><b>%s</b> <code>%s</code> — %s</li>\n", esc(in.Kind), esc(in.Name), esc(in.Summary))
	}
	p("</ul>\n")

	if len(rep.Runs) > 0 {
		p("<h2>SLO timeline</h2>\n<p>Worst per-epoch latency/deadline per design; values above the dashed rule violate the SLO.</p>\n")
		p("<table>\n<tr><th>design</th><th>epochs</th><th>lc apps</th><th>reconfigs</th><th>violation epochs</th><th>worst lat/deadline</th><th>worst norm tail</th><th>batch speedup</th><th>timeline</th></tr>\n")
		for _, r := range rep.Runs {
			p("<tr><td>%s</td><td class=n>%d (warmup %d)</td><td class=n>%d/%d</td><td class=n>%d</td><td class=n>%d</td><td class=n>%s</td><td class=n>%s</td><td class=n>%s</td><td>%s</td></tr>\n",
				esc(r.Design), r.Epochs, r.Warmup, r.LatCrit, r.Apps, r.Reconfigs,
				r.ViolationEpochs, num(r.WorstLatNorm), num(r.WorstNormTail),
				num(r.BatchSpeedup), svgSpark(r.Timeline, true))
		}
		p("</table>\n")
	}

	if len(rep.Churn) > 0 {
		p("<h2>Reconfiguration churn</h2>\n")
		p("<table>\n<tr><th>design</th><th>reconfigs</th><th>causes</th><th>moved fraction (mean / max)</th><th>worst at</th><th>moved MB</th><th>invalidated lines</th></tr>\n")
		for _, c := range rep.Churn {
			p("<tr><td>%s</td><td class=n>%d</td><td>%s</td><td class=n>%s / %s</td><td>epoch %d (%s)</td><td class=n>%s</td><td class=n>%s</td></tr>\n",
				esc(c.Design), c.Reconfigs, esc(causeSummary(c.ByCause)),
				pct(c.MeanMoved), pct(c.MaxMoved), c.MaxMovedEpoch, ms(c.MaxMovedTimeUs),
				num(c.MovedMB), num(c.Invalidated))
		}
		p("</table>\n")
	}

	if len(rep.TopViolations) > 0 {
		p("<h2>Top SLO-violation attributions</h2>\n")
		p("<table>\n<tr><th>design</th><th>epoch</th><th>time</th><th>app</th><th>lat/deadline</th><th>slack (cycles)</th><th>dominant</th><th>dominant share</th><th>alloc MB</th></tr>\n")
		for _, v := range rep.TopViolations {
			p("<tr><td>%s</td><td class=n>%d</td><td class=n>%s</td><td>%s</td><td class=n>%s</td><td class=n>%s</td><td>%s</td><td class=n>%s</td><td class=n>%s</td></tr>\n",
				esc(v.Design), v.Epoch, ms(v.TimeUs), esc(v.Name), num(v.LatNorm),
				num(v.SlackCycles), esc(v.Dominant), dominantShare(v), num(v.AllocBytes/(1<<20)))
		}
		p("</table>\n")
	}

	if len(rep.Alerts) > 0 {
		p("<h2>Alerts (replayed over recorded series)</h2>\n<ul>\n")
		for _, a := range rep.Alerts {
			p("<li class=alert><b>%s</b> <code>%s</code> epoch %d: %s</li>\n", esc(a.Rule), esc(a.Series), a.Epoch, esc(a.Message))
		}
		p("</ul>\n")
	}

	if len(rep.Series) > 0 {
		p("<h2>Recorded time series</h2>\n")
		p("<table>\n<tr><th>series</th><th>samples</th><th>min</th><th>mean</th><th>max</th><th>last</th><th>tail</th></tr>\n")
		for _, s := range rep.Series {
			name := esc(s.Name)
			if s.Dropped > 0 {
				name = fmt.Sprintf("%s <small>(+%d evicted)</small>", name, s.Dropped)
			}
			p("<tr><td><code>%s</code></td><td class=n>%d</td><td class=n>%s</td><td class=n>%s</td><td class=n>%s</td><td class=n>%s</td><td>%s</td></tr>\n",
				name, s.Samples, num(s.Min), num(s.Mean), num(s.Max), num(s.Last), svgSpark(s.Timeline, false))
		}
		p("</table>\n")
	}

	if len(rep.Spans) > 0 {
		p("<h2>Span summary</h2>\n")
		p("<table>\n<tr><th>phase</th><th>count</th><th>total ms</th><th>mean ms</th><th>share</th></tr>\n")
		for _, s := range rep.Spans {
			p("<tr><td>%s</td><td class=n>%d</td><td class=n>%s</td><td class=n>%s</td><td class=n>%s</td></tr>\n",
				esc(s.Name), s.Count, num(s.TotalMs), num(s.MeanMs), pct(s.Share))
		}
		p("</table>\n")
	}

	if len(rep.Journal) > 0 {
		p("<h2>Journalled cells</h2>\n")
		p("<table>\n<tr><th>sweep</th><th>cells</th><th>payload bytes</th></tr>\n")
		for _, j := range rep.Journal {
			p("<tr><td>%s</td><td class=n>%d</td><td class=n>%d</td></tr>\n", esc(j.Label), j.Cells, j.Bytes)
		}
		p("</table>\n")
	}

	if len(rep.ProvVMs) > 0 {
		p("<h2>Placement provenance</h2>\n<p>Why each VM landed where it did, from the <code>-provenance</code> log.</p>\n")
		p("<h3>Per-VM placement rationale (newest recorded reconfiguration)</h3>\n")
		p("<table>\n<tr><th>design</th><th>vm</th><th>epoch</th><th>reconfigs</th><th>decisions</th><th>stages</th><th>banks</th><th>candidates</th><th>eliminated</th><th>truncated</th></tr>\n")
		for _, r := range rep.ProvVMs {
			p("<tr><td>%s</td><td class=n>%d</td><td class=n>%d</td><td class=n>%d</td><td class=n>%d</td><td>%s</td><td>%s</td><td class=n>%d</td><td>%s</td><td class=n>%d</td></tr>\n",
				esc(r.Design), r.VM, r.Epoch, r.Epochs, r.Decisions, esc(causeSummary(r.Stages)),
				esc(intList(r.Banks)), r.Candidates, esc(causeSummary(r.Eliminated)), r.Truncated)
		}
		p("</table>\n")
	}
	if len(rep.ProvBanks) > 0 {
		p("<h3>Most-contested banks</h3>\n<p>Banks that lost the most placement contests (an eliminated candidate entry each).</p>\n")
		p("<table>\n<tr><th>bank</th><th>granted</th><th>contested</th><th>reasons</th></tr>\n")
		for _, r := range rep.ProvBanks {
			p("<tr><td class=n>%d</td><td class=n>%d</td><td class=n>%d</td><td>%s</td></tr>\n",
				r.Bank, r.Granted, r.Contested, esc(causeSummary(r.ByReason)))
		}
		p("</table>\n")
	}
	if len(rep.ProvMoves) > 0 {
		p("<h3>Placement moves (why did VM X move?)</h3>\n")
		p("<table>\n<tr><th>design</th><th>vm</th><th>epoch</th><th>gained banks</th><th>lost banks</th><th>why</th></tr>\n")
		for _, r := range rep.ProvMoves {
			p("<tr><td>%s</td><td class=n>%d</td><td class=n>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				esc(r.Design), r.VM, r.Epoch, esc(intList(r.Gained)), esc(intList(r.Lost)), esc(r.Why))
		}
		p("</table>\n")
	}
	if len(rep.ProvValves) > 0 {
		p("<h3>Fallback valves fired</h3>\n")
		p("<table>\n<tr><th>design</th><th>valve</th><th>count</th></tr>\n")
		for _, r := range rep.ProvValves {
			p("<tr><td>%s</td><td>%s</td><td class=n>%d</td></tr>\n", esc(r.Design), esc(r.Valve), r.Count)
		}
		p("</table>\n")
	}

	p("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
