package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumanji/internal/harness"
	"jumanji/internal/journal"
	"jumanji/internal/obs"
	"jumanji/internal/obs/tsdb"
)

// genRun executes a small figure with every recorded sink enabled and
// writes the artifacts into dir, returning their paths.
func genRun(t *testing.T, dir string) (events, ts, trace, prov string) {
	t.Helper()
	events = filepath.Join(dir, "run.jsonl")
	ts = filepath.Join(dir, "run.ts.json")
	trace = filepath.Join(dir, "run.trace.json")
	prov = filepath.Join(dir, "run.prov.jsonl")

	evF, err := os.Create(events)
	if err != nil {
		t.Fatal(err)
	}
	trF, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	pvF, err := os.Create(prov)
	if err != nil {
		t.Fatal(err)
	}
	o := harness.Options{Mixes: 2, Epochs: 10, Warmup: 3, Seed: 1, Parallel: 2}
	o.Metrics = obs.NewRegistry()
	o.Events = obs.NewEventLog(evF)
	o.Trace = obs.NewTrace(trF)
	o.TS = tsdb.New(tsdb.DefaultCapacity)
	o.Prov = obs.NewEventLog(pvF)
	harness.Fig5(o)
	if err := o.Events.Err(); err != nil {
		t.Fatal(err)
	}
	if err := o.Prov.Err(); err != nil {
		t.Fatal(err)
	}
	if err := o.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	if err := evF.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pvF.Close(); err != nil {
		t.Fatal(err)
	}
	if err := trF.Close(); err != nil {
		t.Fatal(err)
	}
	tsF, err := os.Create(ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.TS.Write(tsF); err != nil {
		t.Fatal(err)
	}
	if err := tsF.Close(); err != nil {
		t.Fatal(err)
	}
	return events, ts, trace, prov
}

func render(t *testing.T, events, ts, journalPath, trace, prov string) (html, md string) {
	t.Helper()
	in, err := loadInputs(events, ts, journalPath, trace, prov)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := buildReport("test report", 10, in)
	if err != nil {
		t.Fatal(err)
	}
	var h, m bytes.Buffer
	if err := renderHTML(&h, rep); err != nil {
		t.Fatal(err)
	}
	if err := renderMarkdown(&m, rep); err != nil {
		t.Fatal(err)
	}
	return h.String(), m.String()
}

// TestReportByteIdentical pins the determinism acceptance criterion: two
// independent runs with the same seed produce byte-identical reports, in
// both formats, because every timestamp comes from recorded (simulated)
// data rather than generation time. The trace file is excluded — span
// timings are wall-clock by design — so the report's span section is
// exercised separately below.
func TestReportByteIdentical(t *testing.T) {
	e1, t1, _, p1 := genRun(t, t.TempDir())
	e2, t2, _, p2 := genRun(t, t.TempDir())
	h1, m1 := render(t, e1, t1, "", "", p1)
	h2, m2 := render(t, e2, t2, "", "", p2)
	if h1 != h2 {
		t.Error("HTML reports differ between identical runs")
	}
	if m1 != m2 {
		t.Error("markdown reports differ between identical runs")
	}
	if !strings.Contains(h1, "<html>") || !strings.Contains(h1, "</html>") {
		t.Error("HTML report is not a complete document")
	}
	if !strings.Contains(h1, "SLO timeline") || !strings.Contains(m1, "## SLO timeline") {
		t.Error("reports are missing the SLO timeline section")
	}
	if !strings.Contains(h1, "Recorded time series") {
		t.Error("HTML report is missing the time-series section")
	}
	if !strings.Contains(h1, "Placement provenance") || !strings.Contains(m1, "## Placement provenance") {
		t.Error("reports are missing the placement-provenance section")
	}
	if !strings.Contains(m1, "Most-contested banks") || !strings.Contains(m1, "Per-VM placement rationale") {
		t.Error("provenance section is missing its rationale/contested-banks tables")
	}
}

// TestReportSectionsSynthetic drives every section from hand-built inputs,
// so the assertions are exact: a violation with a known dominant component,
// a churn record with a known cause, a series that fires the SLO-onset
// alert, a journalled cell, and a trace span.
func TestReportSectionsSynthetic(t *testing.T) {
	dir := t.TempDir()

	events := filepath.Join(dir, "ev.jsonl")
	evF, err := os.Create(events)
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewEventLog(evF)
	log.EmitRunStart(obs.RunStart{Design: "Jumanji", Epochs: 3, Warmup: 0, Banks: 20, BankBytes: 1 << 20,
		Apps: []obs.AppInfo{{App: 0, Name: "xapian", LatencyCritical: true, DeadlineCycles: 1e6}}})
	log.EmitEpoch(obs.Epoch{Epoch: 0, TimeUs: 0, Reconfigured: true, WorstLatNorm: 0.8})
	log.EmitReconfigChurn(obs.ReconfigChurn{Epoch: 0, TimeUs: 0, Cause: "initial",
		MaxMovedFraction: 0.25, MovedBytes: 4 << 20, InvalidatedLines: 65536, AppsMoved: 1})
	log.EmitEpoch(obs.Epoch{Epoch: 1, TimeUs: 1e5, Reconfigured: false, WorstLatNorm: 1.4})
	log.EmitSLOViolation(obs.SLOViolation{Epoch: 1, TimeUs: 1e5, App: 0, Name: "xapian", Design: "Jumanji",
		LatNorm: 1.4, SlackCycles: -4e5, AllocBytes: 2 << 20,
		Breakdown: obs.LatencyBreakdown{BaseCycles: 100, BankCycles: 50, NoCCycles: 30, MemCycles: 80, QueueCycles: 300},
		Dominant:  "queue"})
	log.EmitRunEnd(obs.RunEnd{Design: "Jumanji", WorstNormTail: 1.4, BatchWeightedSpeedup: 1.1, Vulnerability: 0})
	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	if err := evF.Close(); err != nil {
		t.Fatal(err)
	}

	ts := filepath.Join(dir, "run.ts.json")
	db := tsdb.New(64)
	db.Append("system.lat_norm.p95", 0, 0.8)
	db.Append("system.lat_norm.p95", 1, 1.4)
	tsF, err := os.Create(ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Write(tsF); err != nil {
		t.Fatal(err)
	}
	tsF.Close()

	jpath := filepath.Join(dir, "run.journal")
	jw, err := journal.Create(jpath, "test-fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Append("fig5/synthetic", 0, 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	trace := filepath.Join(dir, "run.trace.json")
	trF, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(trF)
	lane := tr.Lane("wall clock")
	tr.Span(lane, 0, "core.place", "span", 0, 1500, nil)
	tr.Span(lane, 0, "core.place", "span", 2000, 500, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	trF.Close()

	html, md := render(t, events, ts, jpath, trace, "")
	for _, want := range []string{
		"Jumanji",             // run row
		"queue",               // dominant component
		"initial",             // churn cause
		tsdb.RuleSLOOnset,     // replayed alert
		"system.lat_norm.p95", // series row
		"fig5/synthetic",      // journal label
		"core.place",          // span row
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown report is missing %q", want)
		}
		if !strings.Contains(html, want) {
			t.Errorf("HTML report is missing %q", want)
		}
	}
	// The dominant share divides by the full breakdown (560 cycles), so
	// queue's 300 cycles is 53.6%.
	if !strings.Contains(md, "53.6%") {
		t.Errorf("markdown report is missing the dominant-share percentage; got:\n%s", md)
	}
}

// TestReportProvenanceSynthetic drives the provenance section from a
// hand-built log: a VM whose banks change between two reconfigurations,
// eliminated candidates naming a contested bank, and a run-wide valve —
// exact rows, not just non-emptiness.
func TestReportProvenanceSynthetic(t *testing.T) {
	dir := t.TempDir()
	prov := filepath.Join(dir, "prov.jsonl")
	pvF, err := os.Create(prov)
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewEventLog(pvF)
	r := obs.NewProvRecorder(log, "Jumanji", []string{"xapian"})

	r.StartEpoch(0, 0)
	r.Decision(obs.StageVMBanks, 0, -1, false, 2<<20)
	r.Eliminated(obs.StageVMBanks, 0, -1, 5, 1, 0, obs.ElimSecurityDomain)
	r.Placed(obs.StageVMBanks, 0, -1, 2, 1, 1<<20)
	r.Placed(obs.StageVMBanks, 0, -1, 3, 2, 1<<20)
	r.Flush()

	r.StartEpoch(1, 1e5)
	r.Valve(obs.ValveShrinkLatSizes, -1, 1, 0.9, "lat-crit data did not fit")
	r.Decision(obs.StageVMBanks, 0, -1, false, 2<<20)
	r.Eliminated(obs.StageVMBanks, 0, -1, 5, 1, 0, obs.ElimSecurityDomain)
	r.Placed(obs.StageVMBanks, 0, -1, 2, 1, 1<<20)
	r.Placed(obs.StageVMBanks, 0, -1, 7, 3, 1<<20)
	r.Flush()

	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	if err := pvF.Close(); err != nil {
		t.Fatal(err)
	}

	in, err := loadInputs("", "", "", "", prov)
	if err != nil {
		t.Fatal(err)
	}
	if in.Prov.Records != 2 || in.Prov.Valves != 1 {
		t.Fatalf("aggregate = %d decisions, %d valves; want 2, 1", in.Prov.Records, in.Prov.Valves)
	}
	rep, err := buildReport("prov report", 10, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ProvVMs) != 1 {
		t.Fatalf("ProvVMs = %+v; want one row", rep.ProvVMs)
	}
	vm := rep.ProvVMs[0]
	if vm.Design != "Jumanji" || vm.VM != 0 || vm.Epoch != 1 || vm.Epochs != 2 {
		t.Fatalf("vm row = %+v; want Jumanji vm 0 at epoch 1 over 2 reconfigs", vm)
	}
	if len(vm.Banks) != 2 || vm.Banks[0] != 2 || vm.Banks[1] != 7 {
		t.Fatalf("vm banks = %v; want [2 7]", vm.Banks)
	}
	if vm.Eliminated[obs.ElimSecurityDomain] != 1 {
		t.Fatalf("vm eliminations = %v; want one security-domain conflict", vm.Eliminated)
	}
	// Bank 5 lost both contests; ranked first.
	if len(rep.ProvBanks) == 0 || rep.ProvBanks[0].Bank != 5 || rep.ProvBanks[0].Contested != 2 {
		t.Fatalf("ProvBanks = %+v; want bank 5 contested twice first", rep.ProvBanks)
	}
	// Epoch 1 swapped bank 3 for bank 7; the why line carries the epoch's
	// elimination pressure and the run-wide valve.
	if len(rep.ProvMoves) != 1 {
		t.Fatalf("ProvMoves = %+v; want one move", rep.ProvMoves)
	}
	mv := rep.ProvMoves[0]
	if mv.Epoch != 1 || len(mv.Gained) != 1 || mv.Gained[0] != 7 || len(mv.Lost) != 1 || mv.Lost[0] != 3 {
		t.Fatalf("move = %+v; want gained [7] lost [3] at epoch 1", mv)
	}
	if !strings.Contains(mv.Why, obs.ElimSecurityDomain) || !strings.Contains(mv.Why, obs.ValveShrinkLatSizes) {
		t.Fatalf("move why = %q; want the elimination reason and the fired valve", mv.Why)
	}
	if len(rep.ProvValves) != 1 || rep.ProvValves[0].Valve != obs.ValveShrinkLatSizes || rep.ProvValves[0].Count != 1 {
		t.Fatalf("ProvValves = %+v", rep.ProvValves)
	}

	var h, m bytes.Buffer
	if err := renderHTML(&h, rep); err != nil {
		t.Fatal(err)
	}
	if err := renderMarkdown(&m, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Placement provenance", "Most-contested banks", "why did VM X move", obs.ValveShrinkLatSizes} {
		if !strings.Contains(m.String(), want) {
			t.Errorf("markdown provenance section is missing %q", want)
		}
		if !strings.Contains(h.String(), want) {
			t.Errorf("HTML provenance section is missing %q", want)
		}
	}
}

// TestReportRejectsMalformedInputs: corrupt artifacts fail loudly instead
// of producing a silently empty report.
func TestReportRejectsMalformedInputs(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"v\":99,\"seq\":1,\"type\":\"epoch\",\"data\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadInputs(bad, "", "", "", ""); err == nil {
		t.Error("wrong-schema event log was accepted")
	}
	if _, err := loadInputs("", "", "", "", bad); err == nil {
		t.Error("wrong-schema provenance log was accepted")
	}
	badTS := filepath.Join(dir, "bad.ts.json")
	if err := os.WriteFile(badTS, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadInputs("", badTS, "", "", ""); err == nil {
		t.Error("malformed tsdb dump was accepted")
	}
}
