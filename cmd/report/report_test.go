package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumanji/internal/harness"
	"jumanji/internal/journal"
	"jumanji/internal/obs"
	"jumanji/internal/obs/tsdb"
)

// genRun executes a small figure with every recorded sink enabled and
// writes the artifacts into dir, returning their paths.
func genRun(t *testing.T, dir string) (events, ts, trace string) {
	t.Helper()
	events = filepath.Join(dir, "run.jsonl")
	ts = filepath.Join(dir, "run.ts.json")
	trace = filepath.Join(dir, "run.trace.json")

	evF, err := os.Create(events)
	if err != nil {
		t.Fatal(err)
	}
	trF, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	o := harness.Options{Mixes: 2, Epochs: 10, Warmup: 3, Seed: 1, Parallel: 2}
	o.Metrics = obs.NewRegistry()
	o.Events = obs.NewEventLog(evF)
	o.Trace = obs.NewTrace(trF)
	o.TS = tsdb.New(tsdb.DefaultCapacity)
	harness.Fig5(o)
	if err := o.Events.Err(); err != nil {
		t.Fatal(err)
	}
	if err := o.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	if err := evF.Close(); err != nil {
		t.Fatal(err)
	}
	if err := trF.Close(); err != nil {
		t.Fatal(err)
	}
	tsF, err := os.Create(ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.TS.Write(tsF); err != nil {
		t.Fatal(err)
	}
	if err := tsF.Close(); err != nil {
		t.Fatal(err)
	}
	return events, ts, trace
}

func render(t *testing.T, events, ts, journalPath, trace string) (html, md string) {
	t.Helper()
	in, err := loadInputs(events, ts, journalPath, trace)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := buildReport("test report", 10, in)
	if err != nil {
		t.Fatal(err)
	}
	var h, m bytes.Buffer
	if err := renderHTML(&h, rep); err != nil {
		t.Fatal(err)
	}
	if err := renderMarkdown(&m, rep); err != nil {
		t.Fatal(err)
	}
	return h.String(), m.String()
}

// TestReportByteIdentical pins the determinism acceptance criterion: two
// independent runs with the same seed produce byte-identical reports, in
// both formats, because every timestamp comes from recorded (simulated)
// data rather than generation time. The trace file is excluded — span
// timings are wall-clock by design — so the report's span section is
// exercised separately below.
func TestReportByteIdentical(t *testing.T) {
	e1, t1, _ := genRun(t, t.TempDir())
	e2, t2, _ := genRun(t, t.TempDir())
	h1, m1 := render(t, e1, t1, "", "")
	h2, m2 := render(t, e2, t2, "", "")
	if h1 != h2 {
		t.Error("HTML reports differ between identical runs")
	}
	if m1 != m2 {
		t.Error("markdown reports differ between identical runs")
	}
	if !strings.Contains(h1, "<html>") || !strings.Contains(h1, "</html>") {
		t.Error("HTML report is not a complete document")
	}
	if !strings.Contains(h1, "SLO timeline") || !strings.Contains(m1, "## SLO timeline") {
		t.Error("reports are missing the SLO timeline section")
	}
	if !strings.Contains(h1, "Recorded time series") {
		t.Error("HTML report is missing the time-series section")
	}
}

// TestReportSectionsSynthetic drives every section from hand-built inputs,
// so the assertions are exact: a violation with a known dominant component,
// a churn record with a known cause, a series that fires the SLO-onset
// alert, a journalled cell, and a trace span.
func TestReportSectionsSynthetic(t *testing.T) {
	dir := t.TempDir()

	events := filepath.Join(dir, "ev.jsonl")
	evF, err := os.Create(events)
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewEventLog(evF)
	log.EmitRunStart(obs.RunStart{Design: "Jumanji", Epochs: 3, Warmup: 0, Banks: 20, BankBytes: 1 << 20,
		Apps: []obs.AppInfo{{App: 0, Name: "xapian", LatencyCritical: true, DeadlineCycles: 1e6}}})
	log.EmitEpoch(obs.Epoch{Epoch: 0, TimeUs: 0, Reconfigured: true, WorstLatNorm: 0.8})
	log.EmitReconfigChurn(obs.ReconfigChurn{Epoch: 0, TimeUs: 0, Cause: "initial",
		MaxMovedFraction: 0.25, MovedBytes: 4 << 20, InvalidatedLines: 65536, AppsMoved: 1})
	log.EmitEpoch(obs.Epoch{Epoch: 1, TimeUs: 1e5, Reconfigured: false, WorstLatNorm: 1.4})
	log.EmitSLOViolation(obs.SLOViolation{Epoch: 1, TimeUs: 1e5, App: 0, Name: "xapian", Design: "Jumanji",
		LatNorm: 1.4, SlackCycles: -4e5, AllocBytes: 2 << 20,
		Breakdown: obs.LatencyBreakdown{BaseCycles: 100, BankCycles: 50, NoCCycles: 30, MemCycles: 80, QueueCycles: 300},
		Dominant:  "queue"})
	log.EmitRunEnd(obs.RunEnd{Design: "Jumanji", WorstNormTail: 1.4, BatchWeightedSpeedup: 1.1, Vulnerability: 0})
	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	if err := evF.Close(); err != nil {
		t.Fatal(err)
	}

	ts := filepath.Join(dir, "run.ts.json")
	db := tsdb.New(64)
	db.Append("system.lat_norm.p95", 0, 0.8)
	db.Append("system.lat_norm.p95", 1, 1.4)
	tsF, err := os.Create(ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Write(tsF); err != nil {
		t.Fatal(err)
	}
	tsF.Close()

	jpath := filepath.Join(dir, "run.journal")
	jw, err := journal.Create(jpath, "test-fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Append("fig5/synthetic", 0, 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	trace := filepath.Join(dir, "run.trace.json")
	trF, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(trF)
	lane := tr.Lane("wall clock")
	tr.Span(lane, 0, "core.place", "span", 0, 1500, nil)
	tr.Span(lane, 0, "core.place", "span", 2000, 500, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	trF.Close()

	html, md := render(t, events, ts, jpath, trace)
	for _, want := range []string{
		"Jumanji",             // run row
		"queue",               // dominant component
		"initial",             // churn cause
		tsdb.RuleSLOOnset,     // replayed alert
		"system.lat_norm.p95", // series row
		"fig5/synthetic",      // journal label
		"core.place",          // span row
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown report is missing %q", want)
		}
		if !strings.Contains(html, want) {
			t.Errorf("HTML report is missing %q", want)
		}
	}
	// The dominant share divides by the full breakdown (560 cycles), so
	// queue's 300 cycles is 53.6%.
	if !strings.Contains(md, "53.6%") {
		t.Errorf("markdown report is missing the dominant-share percentage; got:\n%s", md)
	}
}

// TestReportRejectsMalformedInputs: corrupt artifacts fail loudly instead
// of producing a silently empty report.
func TestReportRejectsMalformedInputs(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"v\":99,\"seq\":1,\"type\":\"epoch\",\"data\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadInputs(bad, "", "", ""); err == nil {
		t.Error("wrong-schema event log was accepted")
	}
	badTS := filepath.Join(dir, "bad.ts.json")
	if err := os.WriteFile(badTS, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadInputs("", badTS, "", ""); err == nil {
		t.Error("malformed tsdb dump was accepted")
	}
}
