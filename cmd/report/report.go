package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"jumanji/internal/journal"
	"jumanji/internal/obs"
	"jumanji/internal/obs/tsdb"
)

// inputs is everything the report can be assembled from; every field is
// optional and the corresponding sections are simply omitted.
type inputs struct {
	Events  []obs.Event
	TS      []tsdb.SeriesData
	Journal *journal.Log
	Spans   []traceSpan
	// Prov carries the provenance log pre-aggregated: the file streams
	// through obs.DecodeEvents at load time (provenance logs can dwarf the
	// decision log), so only the bounded aggregate reaches buildReport.
	Prov *provAgg

	EventsName, TSName, JournalName, TraceName, ProvName string
}

// traceSpan is one complete ("ph":"X") event from a Chrome trace file.
type traceSpan struct {
	Name  string
	Cat   string
	DurUs float64
}

// loadInputs reads whichever artifact paths are non-empty.
func loadInputs(eventsPath, tsdbPath, journalPath, tracePath, provPath string) (inputs, error) {
	var in inputs
	if provPath != "" {
		f, err := os.Open(provPath)
		if err != nil {
			return in, err
		}
		agg := &provAgg{}
		err = obs.DecodeEvents(f, agg.add)
		f.Close()
		if err != nil {
			return in, fmt.Errorf("%s: %w", provPath, err)
		}
		in.Prov, in.ProvName = agg, filepath.Base(provPath)
	}
	if eventsPath != "" {
		data, err := os.ReadFile(eventsPath)
		if err != nil {
			return in, err
		}
		evs, err := obs.DecodeEventLog(data)
		if err != nil {
			return in, fmt.Errorf("%s: %w", eventsPath, err)
		}
		in.Events, in.EventsName = evs, filepath.Base(eventsPath)
	}
	if tsdbPath != "" {
		f, err := os.Open(tsdbPath)
		if err != nil {
			return in, err
		}
		db, err := tsdb.Read(f)
		f.Close()
		if err != nil {
			return in, fmt.Errorf("%s: %w", tsdbPath, err)
		}
		in.TS, in.TSName = db.Dump(), filepath.Base(tsdbPath)
	}
	if journalPath != "" {
		log, err := journal.Load(journalPath)
		if err != nil {
			return in, err
		}
		in.Journal, in.JournalName = log, filepath.Base(journalPath)
	}
	if tracePath != "" {
		data, err := os.ReadFile(tracePath)
		if err != nil {
			return in, err
		}
		spans, err := decodeTraceSpans(data)
		if err != nil {
			return in, fmt.Errorf("%s: %w", tracePath, err)
		}
		in.Spans, in.TraceName = spans, filepath.Base(tracePath)
	}
	return in, nil
}

func decodeTraceSpans(data []byte) ([]traceSpan, error) {
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("not a valid trace file: %w", err)
	}
	var out []traceSpan
	for _, e := range f.TraceEvents {
		if e.Ph == "X" {
			out = append(out, traceSpan{Name: e.Name, Cat: e.Cat, DurUs: e.Dur})
		}
	}
	return out, nil
}

// report is the assembled document both renderers consume.
type report struct {
	Title  string
	Inputs []inputLine

	Runs          []runSummary
	Churn         []churnRow
	TopViolations []violationRow
	Alerts        []tsdb.Alert
	Series        []seriesRow
	Spans         []spanRow
	Journal       []journalRow

	// Placement provenance (from -provenance; see provenance.go).
	ProvVMs    []provVMRow
	ProvBanks  []provBankRow
	ProvMoves  []provMoveRow
	ProvValves []provValveRow
}

type inputLine struct {
	Kind, Name, Summary string
}

// runSummary is one run_start..run_end block of the event log.
type runSummary struct {
	Design          string
	Epochs, Warmup  int
	Apps, LatCrit   int
	Reconfigs       int
	ViolationEpochs int       // epochs with WorstLatNorm > 1
	WorstLatNorm    float64   // max over epochs
	Timeline        []float64 // WorstLatNorm per observed epoch, in order
	// Closing summary (zero when the run_end record is missing).
	WorstNormTail float64
	BatchSpeedup  float64
	Vulnerability float64
	EnergyNJ      float64
}

// churnRow aggregates one design's reconfig_churn records.
type churnRow struct {
	Design         string
	Reconfigs      int
	ByCause        map[string]int
	MeanMoved      float64
	MaxMoved       float64
	MovedMB        float64
	Invalidated    float64
	MaxMovedEpoch  int
	MaxMovedTimeUs float64
}

type violationRow struct {
	obs.SLOViolation
}

type seriesRow struct {
	Name           string
	Samples        int
	Dropped        uint64
	Min, Mean, Max float64
	Last           float64
	Timeline       []float64 // newest window for the sparkline
}

type spanRow struct {
	Name    string
	Count   int
	TotalMs float64
	MeanMs  float64
	Share   float64 // of total span time
}

type journalRow struct {
	Label string
	Cells int
	Bytes int
}

// buildReport assembles the document. It is a pure function of its inputs:
// no clocks, no randomness, maps iterated in sorted order.
func buildReport(title string, topK int, in inputs) (*report, error) {
	rep := &report{Title: title}

	if in.EventsName != "" {
		rep.Inputs = append(rep.Inputs, inputLine{"events", in.EventsName, fmt.Sprintf("%d records", len(in.Events))})
	}
	if in.TSName != "" {
		n := 0
		for _, sd := range in.TS {
			n += len(sd.Samples)
		}
		rep.Inputs = append(rep.Inputs, inputLine{"tsdb", in.TSName, fmt.Sprintf("%d series, %d samples", len(in.TS), n)})
	}
	if in.JournalName != "" {
		rep.Inputs = append(rep.Inputs, inputLine{"journal", in.JournalName, fmt.Sprintf("%d cells", in.Journal.Len())})
	}
	if in.TraceName != "" {
		rep.Inputs = append(rep.Inputs, inputLine{"trace", in.TraceName, fmt.Sprintf("%d spans", len(in.Spans))})
	}
	if in.ProvName != "" {
		rep.Inputs = append(rep.Inputs, inputLine{"provenance", in.ProvName,
			fmt.Sprintf("%d decisions, %d valves", in.Prov.Records, in.Prov.Valves)})
	}

	if err := buildFromEvents(rep, in.Events, topK); err != nil {
		return nil, err
	}
	buildSeries(rep, in.TS)
	buildSpans(rep, in.Spans)
	buildJournal(rep, in.Journal)
	buildProvenance(rep, in.Prov, topK)
	return rep, nil
}

// buildFromEvents walks the log once: run_start opens a run, epoch and
// churn records land on the current run, slo_violation records accumulate
// globally (they carry their own design), run_end closes the run.
func buildFromEvents(rep *report, events []obs.Event, topK int) error {
	churn := make(map[string]*churnRow)
	var churnOrder []string
	var cur *runSummary
	var violations []violationRow

	for _, ev := range events {
		switch ev.Type {
		case obs.TypeRunStart:
			var rs obs.RunStart
			if err := json.Unmarshal(ev.Data, &rs); err != nil {
				return fmt.Errorf("run_start seq %d: %w", ev.Seq, err)
			}
			rep.Runs = append(rep.Runs, runSummary{Design: rs.Design, Epochs: rs.Epochs, Warmup: rs.Warmup, Apps: len(rs.Apps)})
			cur = &rep.Runs[len(rep.Runs)-1]
			for _, a := range rs.Apps {
				if a.LatencyCritical {
					cur.LatCrit++
				}
			}
		case obs.TypeEpoch:
			if cur == nil {
				continue // a truncated log; epochs before any run_start are unattributable
			}
			var e obs.Epoch
			if err := json.Unmarshal(ev.Data, &e); err != nil {
				return fmt.Errorf("epoch seq %d: %w", ev.Seq, err)
			}
			cur.Timeline = append(cur.Timeline, e.WorstLatNorm)
			if e.Reconfigured {
				cur.Reconfigs++
			}
			if e.WorstLatNorm > 1 {
				cur.ViolationEpochs++
			}
			if e.WorstLatNorm > cur.WorstLatNorm {
				cur.WorstLatNorm = e.WorstLatNorm
			}
		case obs.TypeReconfigChurn:
			if cur == nil {
				continue
			}
			var c obs.ReconfigChurn
			if err := json.Unmarshal(ev.Data, &c); err != nil {
				return fmt.Errorf("reconfig_churn seq %d: %w", ev.Seq, err)
			}
			row := churn[cur.Design]
			if row == nil {
				row = &churnRow{Design: cur.Design, ByCause: make(map[string]int), MaxMovedEpoch: -1}
				churn[cur.Design] = row
				churnOrder = append(churnOrder, cur.Design)
			}
			row.Reconfigs++
			row.ByCause[c.Cause]++
			row.MeanMoved += c.MaxMovedFraction
			if c.MaxMovedFraction > row.MaxMoved || row.MaxMovedEpoch < 0 {
				row.MaxMoved, row.MaxMovedEpoch, row.MaxMovedTimeUs = c.MaxMovedFraction, c.Epoch, c.TimeUs
			}
			row.MovedMB += c.MovedBytes / (1 << 20)
			row.Invalidated += c.InvalidatedLines
		case obs.TypeSLOViolation:
			var v obs.SLOViolation
			if err := json.Unmarshal(ev.Data, &v); err != nil {
				return fmt.Errorf("slo_violation seq %d: %w", ev.Seq, err)
			}
			violations = append(violations, violationRow{v})
		case obs.TypeRunEnd:
			if cur == nil {
				continue
			}
			var re obs.RunEnd
			if err := json.Unmarshal(ev.Data, &re); err != nil {
				return fmt.Errorf("run_end seq %d: %w", ev.Seq, err)
			}
			cur.WorstNormTail, cur.BatchSpeedup = re.WorstNormTail, re.BatchWeightedSpeedup
			cur.Vulnerability, cur.EnergyNJ = re.Vulnerability, re.EnergyNJ
			cur = nil
		}
	}

	for _, design := range churnOrder {
		row := churn[design]
		row.MeanMoved /= float64(row.Reconfigs)
		rep.Churn = append(rep.Churn, *row)
	}

	// Worst violations first; ties broken by design, epoch, then app so the
	// order (and the report bytes) never depend on sort internals.
	sort.SliceStable(violations, func(i, j int) bool {
		a, b := violations[i], violations[j]
		if a.LatNorm != b.LatNorm {
			return a.LatNorm > b.LatNorm
		}
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		return a.App < b.App
	})
	if topK >= 0 && len(violations) > topK {
		violations = violations[:topK]
	}
	rep.TopViolations = violations
	return nil
}

// sparkWindow bounds sparkline length; longer series show their newest end.
const sparkWindow = 60

func buildSeries(rep *report, dump []tsdb.SeriesData) {
	if len(dump) == 0 {
		return
	}
	for _, sd := range dump {
		row := seriesRow{Name: sd.Name, Samples: len(sd.Samples), Dropped: sd.Start}
		if len(sd.Samples) > 0 {
			row.Min, row.Max = math.Inf(1), math.Inf(-1)
			sum := 0.0
			for _, s := range sd.Samples {
				row.Min = math.Min(row.Min, s.Value)
				row.Max = math.Max(row.Max, s.Value)
				sum += s.Value
			}
			row.Mean = sum / float64(len(sd.Samples))
			row.Last = sd.Samples[len(sd.Samples)-1].Value
			start := 0
			if len(sd.Samples) > sparkWindow {
				start = len(sd.Samples) - sparkWindow
			}
			for _, s := range sd.Samples[start:] {
				row.Timeline = append(row.Timeline, s.Value)
			}
		}
		rep.Series = append(rep.Series, row)
	}
	// Replay the online anomaly rules over the recorded series: the report
	// shows exactly what /statusz would have alerted on, from the data.
	det := &tsdb.Detector{}
	rep.Alerts = det.Scan(dump)
}

func buildSpans(rep *report, spans []traceSpan) {
	if len(spans) == 0 {
		return
	}
	agg := make(map[string]*spanRow)
	total := 0.0
	for _, s := range spans {
		row := agg[s.Name]
		if row == nil {
			row = &spanRow{Name: s.Name}
			agg[s.Name] = row
		}
		row.Count++
		row.TotalMs += s.DurUs / 1e3
		total += s.DurUs / 1e3
	}
	names := make([]string, 0, len(agg))
	for name := range agg {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if agg[names[i]].TotalMs != agg[names[j]].TotalMs {
			return agg[names[i]].TotalMs > agg[names[j]].TotalMs
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		row := agg[name]
		row.MeanMs = row.TotalMs / float64(row.Count)
		if total > 0 {
			row.Share = row.TotalMs / total
		}
		rep.Spans = append(rep.Spans, *row)
	}
}

func buildJournal(rep *report, log *journal.Log) {
	if log == nil {
		return
	}
	agg := make(map[string]*journalRow)
	var order []string
	for _, k := range log.Keys() {
		row := agg[k.Label]
		if row == nil {
			row = &journalRow{Label: k.Label}
			agg[k.Label] = row
			order = append(order, k.Label)
		}
		row.Cells++
		if p, ok := log.Get(k.Label, k.Cell, k.Seed); ok {
			row.Bytes += len(p)
		}
	}
	for _, label := range order {
		rep.Journal = append(rep.Journal, *agg[label])
	}
}
