// Command report joins a run's recorded observability artifacts — the
// JSONL event log (-events), the flight-recorder time-series dump (-tsdb),
// the cell journal (-journal), the Chrome trace file (-tracefile), and the
// placement-provenance log (-provenance) — into one self-contained run
// report: per-design SLO timelines, the reconfiguration churn table, the
// top-k SLO-violation attributions, anomaly alerts replayed over the
// recorded series, a span summary, the journal's cell inventory, and the
// placement-provenance section (per-VM rationale, most-contested banks,
// "why did VM X move" diffs, fired fallback valves).
//
// The report is deterministic: every timestamp comes from the recorded
// data (simulated epoch time), never from generation time, so the same
// inputs produce byte-identical output (TestReportByteIdentical).
//
// Examples:
//
//	figures -fig 13 -events run.jsonl -tsdb run.ts.json
//	report -events run.jsonl -tsdb run.ts.json -o report.html
//	report -events run.jsonl -format md        # markdown to stdout
//
// Exit status: 0 on success, 1 on unreadable or malformed inputs, 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		eventsPath  = flag.String("events", "", "JSONL event log written by -events")
		tsdbPath    = flag.String("tsdb", "", "flight-recorder dump written by -tsdb")
		journalPath = flag.String("journal", "", "cell journal written by -journal")
		tracePath   = flag.String("tracefile", "", "Chrome trace file written by -tracefile")
		provPath    = flag.String("provenance", "", "placement-provenance JSONL log written by -provenance")
		out         = flag.String("o", "-", "output file ('-' for stdout)")
		format      = flag.String("format", "html", "output format: html or md")
		topK        = flag.Int("topk", 10, "SLO-violation attributions to list")
		title       = flag.String("title", "Jumanji run report", "report title")
	)
	flag.Parse()
	if *eventsPath == "" && *tsdbPath == "" && *journalPath == "" && *tracePath == "" && *provPath == "" {
		fmt.Fprintln(os.Stderr, "report: no inputs; pass at least one of -events, -tsdb, -journal, -tracefile, -provenance")
		return 2
	}
	if *format != "html" && *format != "md" {
		fmt.Fprintf(os.Stderr, "report: unknown -format %q (want html or md)\n", *format)
		return 2
	}

	in, err := loadInputs(*eventsPath, *tsdbPath, *journalPath, *tracePath, *provPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 1
	}
	rep, err := buildReport(*title, *topK, in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 1
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if *format == "md" {
		err = renderMarkdown(w, rep)
	} else {
		err = renderHTML(w, rep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 1
	}
	return 0
}
