// Command attack-demo runs the security demonstrations of Sec. VI on the
// event-driven simulator:
//
//   - the LLC port attack (Fig. 11): an attacker times its own accesses to
//     one bank and observes queueing delay whenever the victim touches the
//     same bank — no shared cache contents required;
//   - the conflict (prime+probe) attack and its defenses;
//   - the DRRIP set-dueling performance-leakage channel (Sec. VI-C).
package main

import (
	"flag"
	"fmt"
	"os"

	"jumanji/internal/harness"
	"jumanji/internal/security"
)

func main() {
	which := flag.String("attack", "all", "attack to demonstrate: port, conflict, dueling, or all")
	flag.Parse()

	switch *which {
	case "port":
		portDemo()
	case "conflict":
		conflictDemo()
	case "dueling":
		duelingDemo()
	case "all":
		portDemo()
		conflictDemo()
		duelingDemo()
	default:
		fmt.Fprintf(os.Stderr, "attack-demo: unknown attack %q\n", *which)
		os.Exit(2)
	}
}

func portDemo() {
	harness.Fig11(harness.QuickOptions()).Render(os.Stdout)

	fmt.Println("\nDefense comparison (attacker's same-bank signal in cycles):")
	fmt.Printf("%-20s %10s\n", "defense", "signal")
	for _, d := range []struct {
		name string
		def  security.PortDefense
	}{
		{"none", security.PortNoDefense},
		{"way-partitioning", security.PortWayPartition},
		{"bank isolation", security.PortBankIsolation},
	} {
		fmt.Printf("%-20s %10.2f\n", d.name, security.ComparePortDefenses(d.def))
	}
	fmt.Println("Way-partitioning leaves the port channel wide open (Sec. VI-A ②);")
	fmt.Println("only physically separate banks close it.")
}

func conflictDemo() {
	fmt.Println("\n=== Conflict attack (prime+probe) ===")
	fmt.Println("Attacker primes a cache set, victim runs, attacker probes for evictions.")
	fmt.Printf("%-18s %18s %18s\n", "defense", "victim idle", "victim active")
	for _, d := range []struct {
		name string
		def  security.Defense
	}{
		{"none", security.NoDefense},
		{"way-partitioning", security.WayPartition},
		{"bank isolation", security.BankIsolation},
	} {
		idle := security.PrimeProbe(d.def, 0)
		active := security.PrimeProbe(d.def, 6)
		fmt.Printf("%-18s %15d ev %15d ev\n", d.name, idle.ProbeMisses, active.ProbeMisses)
	}
	fmt.Println("Non-zero evictions with an active victim = the attacker sees the access pattern.")

	fmt.Println("\nEnd-to-end secret recovery (victim does one table lookup indexed by a secret):")
	fmt.Printf("%-18s %12s %12s\n", "defense", "secret", "recovered")
	for _, d := range []struct {
		name string
		def  security.Defense
	}{
		{"none", security.NoDefense},
		{"way-partitioning", security.WayPartition},
		{"bank isolation", security.BankIsolation},
	} {
		r := security.RecoverSecret(d.def, 11)
		got := "no"
		if r.Recovered {
			got = fmt.Sprintf("yes (guessed %d)", r.Guessed)
		}
		fmt.Printf("%-18s %12d %12s\n", d.name, r.Actual, got)
	}
}

func duelingDemo() {
	fmt.Println("\n=== Set-dueling performance leakage (Sec. VI-C) ===")
	r := security.RunDuelingLeakage(2000)
	fmt.Printf("victim hit rate alone:             %.3f\n", r.HitRateAlone)
	fmt.Printf("victim hit rate with co-runner:    %.3f\n", r.HitRateWithThrasher)
	fmt.Printf("leakage (hit-rate change):         %.3f\n", r.Leakage())
	fmt.Println("The co-runner shares no lines and no ways with the victim — only the")
	fmt.Println("bank-global DRRIP set-dueling counters. Way-partitioning cannot stop this;")
	fmt.Println("Jumanji's bank isolation does.")
}
