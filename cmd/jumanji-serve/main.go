// Command jumanji-serve is the crash-tolerant experiment service: an
// HTTP/JSON daemon that accepts experiment specs (design comparisons,
// paper figures and tables), schedules them onto the crash-safe sweep
// engine with admission control and fair-share queueing, and survives
// kills: every admitted spec and completed cell is fsync'd, so a restart
// with -resume finishes interrupted experiments from their journals with
// byte-identical results.
//
// Endpoints:
//
//	POST /experiments            submit a spec; 202 queued, 200 deduped,
//	                             429 (+Retry-After) overloaded, 503 draining
//	GET  /experiments            list all experiments
//	GET  /experiments/{id}       one experiment's status
//	GET  /experiments/{id}/result terminal output (202 while unfinished)
//	GET  /experiments/{id}/stream live SSE: state, progress, retry frames
//	GET  /metrics                Prometheus counters (serve.*)
//	GET  /statusz                queue/worker snapshot
//	GET  /healthz                ok, or 503 while draining
//
// Signals: the first SIGINT/SIGTERM drains — admissions stop, in-flight
// cells finish and journal, the queue is snapshotted — and exits 0; a
// second signal aborts immediately with exit 130.
//
// Exit status: 0 after a clean drain, 1 on startup or shutdown errors,
// 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jumanji/internal/chaos"
	"jumanji/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8321", "listen address (use :0 for an ephemeral port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this `file` (for scripts paired with -addr :0)")
		stateDir  = flag.String("state", "", "durable state `directory` (specs, journals, results); required")
		resume    = flag.Bool("resume", false, "recover prior state from -state: finished experiments serve from cache, unfinished ones resume from their journals")
		maxQueue  = flag.Int("max-queue", 64, "admission queue bound; beyond it submissions get 429 + Retry-After")
		perClient = flag.Int("max-per-client", 16, "per-client queued+running bound")
		inFlight  = flag.Int("max-in-flight", 2, "experiments running concurrently (each runs its cells serially)")
		retries   = flag.Int("retries", 2, "retry attempts after a degraded run, with capped exponential backoff")
		backoff   = flag.Duration("backoff", 100*time.Millisecond, "first retry delay")
		backCap   = flag.Duration("backoff-cap", 2*time.Second, "retry delay ceiling")
		soft      = flag.Duration("cell-soft-timeout", 0, "log cells still running after this `duration` (0 = off)")
		hard      = flag.Duration("cell-timeout", 0, "cancel cells still running after this `duration` (0 = off)")
		chaosSpec = flag.String("chaos", "", "deterministic fault-injection `spec`, e.g. 'submit-malformed@0.5,serve-panic-cell=1'")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed for the chaos injector's site hashing")
		drainFor  = flag.Duration("drain-timeout", time.Minute, "bound on the graceful HTTP drain")
	)
	flag.Parse()
	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "jumanji-serve: -state is required")
		flag.Usage()
		return 2
	}
	var inj *chaos.Injector
	if *chaosSpec != "" {
		var err error
		if inj, err = chaos.Parse(*chaosSpec, *chaosSeed); err != nil {
			fmt.Fprintln(os.Stderr, "jumanji-serve:", err)
			return 2
		}
	}

	s, err := serve.New(serve.Config{
		Addr: *addr, StateDir: *stateDir, Resume: *resume,
		MaxQueue: *maxQueue, MaxPerClient: *perClient, MaxInFlight: *inFlight,
		Retries: *retries, BackoffBase: *backoff, BackoffCap: *backCap,
		SoftTimeout: *soft, HardTimeout: *hard,
		Chaos: inj, Log: os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jumanji-serve:", err)
		return 1
	}
	if err := s.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "jumanji-serve:", err)
		return 1
	}
	fmt.Printf("jumanji-serve: listening on http://%s (state %s)\n", s.Addr(), *stateDir)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "jumanji-serve:", err)
			s.Close()
			return 1
		}
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	fmt.Fprintln(os.Stderr, "jumanji-serve: draining (in-flight cells journal and finish; signal again to abort)")
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "jumanji-serve: second signal: aborting now")
		os.Exit(130)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "jumanji-serve:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "jumanji-serve: drained cleanly")
	return 0
}
