package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"jumanji/internal/serve"
)

// TestMain doubles as the daemon entry point: the e2e tests re-exec this
// test binary with JUMANJI_SERVE_CHILD=1 to get a real jumanji-serve
// process they can SIGKILL — no separate build step, no stale binary.
func TestMain(m *testing.M) {
	if os.Getenv("JUMANJI_SERVE_CHILD") == "1" {
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// daemon is one child jumanji-serve process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startDaemon launches the re-exec'd daemon on an ephemeral port and waits
// for it to publish its address.
func startDaemon(t *testing.T, stateDir string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-state", stateDir,
	}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "JUMANJI_SERVE_CHILD=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return &daemon{cmd: cmd, base: "http://" + strings.TrimSpace(string(b))}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck
			t.Fatal("daemon never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sigterm drains the daemon and asserts the documented clean exit.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v (want status 0)", err)
	}
}

// sigkill is the crash under test: no cleanup, no flush, no goodbye.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err == nil {
		t.Fatal("SIGKILL'd daemon exited cleanly?")
	}
}

func (d *daemon) submit(t *testing.T, spec map[string]any) (id string, deduped bool) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/experiments", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var ack struct {
		ID      string `json:"id"`
		Deduped bool   `json:"deduped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack.ID, ack.Deduped
}

func (d *daemon) waitDone(t *testing.T, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/experiments/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch body.State {
		case "done":
			return
		case "degraded", "failed":
			t.Fatalf("experiment %s: %s (%s)", id, body.State, body.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("experiment %s never finished", id)
}

// e2eSpec is the experiment both phases run: all designs so the journal
// has 8 serial cells — enough runway to land a SIGKILL mid-run.
func e2eSpec() map[string]any {
	return map[string]any{"type": "compare", "design": "all", "epochs": 8, "warmup": 2, "seed": 3}
}

// e2eFPH computes the state-file key the daemon will use for e2eSpec.
func e2eFPH(t *testing.T) string {
	t.Helper()
	sp := &serve.Spec{Type: "compare", Design: "all", Epochs: 8, Warmup: 2, Seed: 3}
	rn, ok := serve.Builtins().Lookup("compare")
	if !ok {
		t.Fatal("no compare runner")
	}
	if err := rn.Validate(sp); err != nil {
		t.Fatal(err)
	}
	return serve.FPHash(sp.Fingerprint())
}

// TestKillAndRecover is the crash-recovery acceptance test: SIGKILL the
// daemon mid-sweep, restart with -resume, and require the finished journal
// and result files to be byte-identical to an uninterrupted run's.
func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons")
	}
	fph := e2eFPH(t)

	// Phase A: the uninterrupted reference.
	refDir := t.TempDir()
	ref := startDaemon(t, refDir)
	refID, _ := ref.submit(t, e2eSpec())
	ref.waitDone(t, refID)
	ref.sigterm(t)
	refJournal, err := os.ReadFile(filepath.Join(refDir, "journals", fph+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	refResult, err := os.ReadFile(filepath.Join(refDir, "results", fph+".json"))
	if err != nil {
		t.Fatal(err)
	}

	// Phase B: submit, SIGKILL once the journal shows partial progress.
	dir := t.TempDir()
	d := startDaemon(t, dir)
	id, _ := d.submit(t, e2eSpec())
	jp := filepath.Join(dir, "journals", fph+".journal")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if b, err := os.ReadFile(jp); err == nil && bytes.Count(b, []byte("\n")) >= 2 {
			break // header + at least one journalled cell: mid-run
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never grew")
		}
		time.Sleep(2 * time.Millisecond)
	}
	d.sigkill(t)

	// Restart over the same state directory: the spec was fsync'd at
	// admission, so -resume must finish the experiment from its journal.
	d2 := startDaemon(t, dir, "-resume")
	d2.waitDone(t, id)
	gotJournal, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	gotResult, err := os.ReadFile(filepath.Join(dir, "results", fph+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJournal, refJournal) {
		t.Errorf("recovered journal differs from uninterrupted run (%d vs %d bytes)",
			len(gotJournal), len(refJournal))
	}
	if !bytes.Equal(gotResult, refResult) {
		t.Errorf("recovered result differs:\n--- recovered\n%s\n--- reference\n%s", gotResult, refResult)
	}

	// The recovery is visible in the liveness surface.
	resp, err := http.Get(d2.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	for _, want := range []string{"serve_recovered_total 1", "serve_resumed_cells_total"} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics.String())
		}
	}

	// And identical resubmission dedupes onto the recovered result.
	id2, deduped := d2.submit(t, e2eSpec())
	if id2 != id || !deduped {
		t.Errorf("post-recovery resubmit: id %s deduped %v, want cache hit on %s", id2, deduped, id)
	}
	d2.sigterm(t)
}

// TestDrainExitsZero: the documented signal discipline — first SIGTERM
// drains and exits 0 even with nothing running.
func TestDrainExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons")
	}
	d := startDaemon(t, t.TempDir())
	if _, err := http.Get(d.base + "/healthz"); err != nil {
		t.Fatal(err)
	}
	d.sigterm(t)
}

// TestUsageExitsTwo: no -state is a usage error, exit 2.
func TestUsageExitsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons")
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "JUMANJI_SERVE_CHILD=1")
	err := cmd.Run()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("no -state: %v, want exit 2", err)
	}
}
