// Command figures regenerates the tables and figures of the paper's
// evaluation as text tables. Each experiment reports the same rows/series
// the paper plots; EXPERIMENTS.md records how they compare.
//
// Examples:
//
//	figures -fig 13            # main results, quick protocol
//	figures -fig 8 -paper      # Fig. 8 at the paper's scale
//	figures -table 1
//	figures -all
//	figures -all -journal run.journal -keep-going   # crash-safe sweep
//	figures -all -resume run.journal                # pick up where it died
//
// Exit status: 0 on success, 1 when any cell failed, was skipped, or an
// interrupt drained the run, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"jumanji/internal/harness"
	"jumanji/internal/obs"
	"jumanji/internal/obs/statusz"
	"jumanji/internal/sweep"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		fig      = flag.Int("fig", 0, "figure number to regenerate (4, 5, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18, 19)")
		table    = flag.Int("table", 0, "table number to regenerate (1, 2, 3)")
		all      = flag.Bool("all", false, "regenerate everything")
		paper    = flag.Bool("paper", false, "use the paper's protocol scale (40 mixes; slow)")
		toCSV    = flag.Bool("csv", false, "emit the figure's series as CSV (figures 4, 8, 12, 17, 18)")
		parallel = flag.Int("parallel", 0, "worker count for fanning mixes/designs/sweep points across cores (0 = one per CPU, 1 = serial; output is identical either way)")
		seed     = flag.Int64("seed", 1, "base seed for workload and arrival randomness")
		mesh     = flag.String("mesh", "", "override the machine topology as WxH (default: the paper's 5x4); Fig. 19 sweeps its own meshes and ignores this")
	)
	var sinks obs.CLI
	sinks.RegisterFlags(flag.CommandLine)
	var status statusz.CLI
	status.RegisterFlags(flag.CommandLine)
	var resil sweep.CLI
	resil.RegisterFlags(flag.CommandLine)
	flag.Parse()
	// -status implies -spans: the live endpoints are only worth serving
	// with phase timings behind them.
	if status.Addr != "" {
		sinks.SpansOn = true
	}
	if err := sinks.Open(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}

	o := harness.QuickOptions()
	if *paper {
		o = harness.PaperOptions()
	}
	o.Seed = *seed
	o.Parallel = *parallel
	if *mesh != "" {
		var err error
		if o.MeshW, o.MeshH, err = parseDims(*mesh); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 2
		}
	}
	o.Metrics, o.Events, o.Trace = sinks.Registry(), sinks.Events(), sinks.Trace()
	o.TS = sinks.TS()
	o.Prov = sinks.Prov()
	o.Spans = sinks.Spans()
	o.Progress = status.Tracker()

	// The journal fingerprint covers everything that shapes a cell's
	// identity or its journalled sink state, so a resume against a journal
	// written under a different protocol or sink set is refused.
	fingerprint := fmt.Sprintf("figures|mixes=%d|epochs=%d|warmup=%d|seed=%d|mesh=%dx%d|metrics=%t|events=%t|trace=%t|tsdb=%t|prov=%t",
		o.Mixes, o.Epochs, o.Warmup, o.Seed, o.MeshW, o.MeshH,
		o.Metrics != nil, o.Events != nil, o.Trace != nil, o.TS != nil, o.Prov != nil)
	var curArgs string // the -fig/-table flags of the sweep now running
	repro := func(label string, cell int) string {
		scale := ""
		if *paper {
			scale = " -paper"
		}
		if *mesh != "" {
			scale += " -mesh " + *mesh
		}
		return fmt.Sprintf("figures%s%s -seed %d -cell '%s:%d'", curArgs, scale, o.Seed, label, cell)
	}
	engine, inj, err := resil.Build(o.Seed, fingerprint, repro)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}
	o.Engine, o.Chaos, o.CheckInvariants = engine, inj, resil.Check
	if engine != nil {
		defer sweep.HandleInterrupt(engine.Stop, os.Stderr)()
	}

	if err := status.Start(statusz.Info{
		Command: "figures",
		Config: map[string]string{
			"mixes":  strconv.Itoa(o.Mixes),
			"epochs": strconv.Itoa(o.Epochs),
			"warmup": strconv.Itoa(o.Warmup),
			"seed":   strconv.FormatInt(o.Seed, 10),
		},
	}, o.Spans); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}
	defer status.Close()
	if status.Addr != "" {
		o.PublishMetrics = status.PublishMetrics
		o.PublishTimeseries = status.PublishTimeseries
		if o.Prov != nil {
			o.PublishProvenance = status.PublishProvenance
		}
	}

	// render runs one figure or table, absorbing the sweep engine's
	// control-flow panics: a degraded sweep (reported once, at the end) or
	// single-cell repro completion. rc() folds everything into the exit
	// status after the journal is flushed.
	rc, onlyDone := 0, false
	render := func(args string, f func() int) {
		if onlyDone {
			return
		}
		curArgs = args
		defer func() {
			switch r := recover().(type) {
			case nil:
			case *sweep.RunError:
				rc = 1 // the report prints once, below
			case *sweep.OnlyDone:
				fmt.Fprintf(os.Stderr, "figures: cell %s complete\n", r.Ref)
				onlyDone = true
			default:
				panic(r)
			}
		}()
		if code := f(); code > rc {
			rc = code
		}
	}

	switch {
	case *all:
		for _, f := range []int{4, 5, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18, 19} {
			f := f
			render(fmt.Sprintf(" -fig %d", f), func() int { return renderFig(f, o) })
		}
		for _, t := range []int{1, 2, 3} {
			t := t
			render(fmt.Sprintf(" -table %d", t), func() int { return renderTable(t, o) })
		}
	case *fig != 0 && *toCSV:
		render(fmt.Sprintf(" -fig %d -csv", *fig), func() int {
			if err := harness.CSV(os.Stdout, *fig, o); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return 2
			}
			return 0
		})
	case *fig != 0:
		render(fmt.Sprintf(" -fig %d", *fig), func() int { return renderFig(*fig, o) })
	case *table != 0:
		render(fmt.Sprintf(" -table %d", *table), func() int { return renderTable(*table, o) })
	default:
		flag.Usage()
		return 2
	}

	if err := resil.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		if rc == 0 {
			rc = 1
		}
	}
	if err := sinks.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		if rc == 0 {
			rc = 1
		}
	}
	if engine != nil {
		if rep := engine.Report(); rep.Degraded() || rep.Interrupted {
			rep.WriteText(os.Stderr)
			fmt.Fprintf(os.Stderr, "figures: degraded run: %d cell(s) failed, %d skipped, %d resumed\n",
				len(rep.Failed), len(rep.Skipped), rep.Resumed)
			rc = 1
		} else if rep.Resumed > 0 {
			fmt.Fprintf(os.Stderr, "figures: resumed %d journalled cell(s)\n", rep.Resumed)
		}
	}
	if resil.Cell != "" && !onlyDone {
		fmt.Fprintf(os.Stderr, "figures: -cell %s matched no sweep; pair it with the -fig/-table it came from\n", resil.Cell)
		return 2
	}
	return rc
}

func renderFig(n int, o harness.Options) int {
	w := os.Stdout
	switch n {
	case 4:
		harness.Fig4(o).Render(w)
	case 5:
		harness.RenderFig5(w, harness.Fig5(o))
	case 8:
		harness.RenderFig8(w, harness.Fig8(o))
	case 9:
		harness.RenderFig9(w, harness.Fig9(o))
	case 11:
		harness.Fig11(o).Render(w)
	case 12:
		harness.Fig12(o).Render(w)
	case 13:
		harness.Fig13(o).Render(w)
	case 14:
		harness.RenderFig14(w, harness.Fig14(o))
	case 15:
		harness.RenderFig15(w, harness.Fig15(o))
	case 16:
		harness.RenderFig16(w, harness.Fig16(o))
	case 17:
		harness.RenderFig17(w, harness.Fig17(o))
	case 18:
		harness.RenderFig18(w, harness.Fig18(o))
	case 19:
		harness.RenderFig19(w, harness.Fig19(o))
	default:
		fmt.Fprintf(os.Stderr, "figures: no figure %d (the paper's evaluation figures are 4, 5, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18; 19 is the big-topology scaling study)\n", n)
		return 2
	}
	return 0
}

// parseDims parses a "WxH" topology flag.
func parseDims(s string) (w, h int, err error) {
	if n, _ := fmt.Sscanf(s, "%dx%d", &w, &h); n != 2 || w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("invalid mesh %q (want WxH, e.g. 16x16)", s)
	}
	return w, h, nil
}

func renderTable(n int, o harness.Options) int {
	w := os.Stdout
	switch n {
	case 1:
		harness.RenderTable1(w, harness.Table1(o))
	case 2:
		harness.RenderTable2(w)
	case 3:
		harness.RenderTable3(w)
	default:
		fmt.Fprintf(os.Stderr, "figures: no table %d\n", n)
		return 2
	}
	return 0
}
