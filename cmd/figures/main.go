// Command figures regenerates the tables and figures of the paper's
// evaluation as text tables. Each experiment reports the same rows/series
// the paper plots; EXPERIMENTS.md records how they compare.
//
// Examples:
//
//	figures -fig 13            # main results, quick protocol
//	figures -fig 8 -paper      # Fig. 8 at the paper's scale
//	figures -table 1
//	figures -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"jumanji/internal/harness"
	"jumanji/internal/obs"
	"jumanji/internal/obs/statusz"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure number to regenerate (4, 5, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18)")
		table    = flag.Int("table", 0, "table number to regenerate (1, 2, 3)")
		all      = flag.Bool("all", false, "regenerate everything")
		paper    = flag.Bool("paper", false, "use the paper's protocol scale (40 mixes; slow)")
		toCSV    = flag.Bool("csv", false, "emit the figure's series as CSV (figures 4, 8, 12, 17, 18)")
		parallel = flag.Int("parallel", 0, "worker count for fanning mixes/designs/sweep points across cores (0 = one per CPU, 1 = serial; output is identical either way)")
	)
	var sinks obs.CLI
	sinks.RegisterFlags(flag.CommandLine)
	var status statusz.CLI
	status.RegisterFlags(flag.CommandLine)
	flag.Parse()
	// -status implies -spans: the live endpoints are only worth serving
	// with phase timings behind them.
	if status.Addr != "" {
		sinks.SpansOn = true
	}
	if err := sinks.Open(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	o := harness.QuickOptions()
	if *paper {
		o = harness.PaperOptions()
	}
	o.Parallel = *parallel
	o.Metrics, o.Events, o.Trace = sinks.Registry(), sinks.Events(), sinks.Trace()
	o.Spans = sinks.Spans()
	o.Progress = status.Tracker()
	if err := status.Start(statusz.Info{
		Command: "figures",
		Config: map[string]string{
			"mixes":  strconv.Itoa(o.Mixes),
			"epochs": strconv.Itoa(o.Epochs),
			"warmup": strconv.Itoa(o.Warmup),
			"seed":   strconv.FormatInt(o.Seed, 10),
		},
	}, o.Spans); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	defer status.Close()
	if status.Addr != "" {
		o.PublishMetrics = status.PublishMetrics
	}

	switch {
	case *all:
		for _, f := range []int{4, 5, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18} {
			renderFig(f, o)
		}
		for _, t := range []int{1, 2, 3} {
			renderTable(t, o)
		}
	case *fig != 0 && *toCSV:
		if err := harness.CSV(os.Stdout, *fig, o); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
	case *fig != 0:
		renderFig(*fig, o)
	case *table != 0:
		renderTable(*table, o)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := sinks.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func renderFig(n int, o harness.Options) {
	w := os.Stdout
	switch n {
	case 4:
		harness.Fig4(o).Render(w)
	case 5:
		harness.RenderFig5(w, harness.Fig5(o))
	case 8:
		harness.RenderFig8(w, harness.Fig8(o))
	case 9:
		harness.RenderFig9(w, harness.Fig9(o))
	case 11:
		harness.Fig11(o).Render(w)
	case 12:
		harness.Fig12(o).Render(w)
	case 13:
		harness.Fig13(o).Render(w)
	case 14:
		harness.RenderFig14(w, harness.Fig14(o))
	case 15:
		harness.RenderFig15(w, harness.Fig15(o))
	case 16:
		harness.RenderFig16(w, harness.Fig16(o))
	case 17:
		harness.RenderFig17(w, harness.Fig17(o))
	case 18:
		harness.RenderFig18(w, harness.Fig18(o))
	default:
		fmt.Fprintf(os.Stderr, "figures: no figure %d (the paper's evaluation figures are 4, 5, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18)\n", n)
		os.Exit(2)
	}
}

func renderTable(n int, o harness.Options) {
	w := os.Stdout
	switch n {
	case 1:
		harness.RenderTable1(w, harness.Table1(o))
	case 2:
		harness.RenderTable2(w)
	case 3:
		harness.RenderTable3(w)
	default:
		fmt.Fprintf(os.Stderr, "figures: no table %d\n", n)
		os.Exit(2)
	}
}
