package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const guardedBad = `// alloc-guarded
package p

import "sort"

func f(xs []int) []int {
	ys := make([]int, len(xs))
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return ys
}
`

const guardedGood = `// alloc-guarded: hot path.
package p

func g(n int) []int {
	buf := make([]int, n) // alloc: ok (pool warmup)
	// make( in a comment is fine; so is sort.Slice here.
	return buf
}
`

const unguarded = `package q

import "sort"

func h(xs []int) {
	_ = make([]int, 9)
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
`

func TestAllocvetFlagsGuardedViolations(t *testing.T) {
	dir := writeTree(t, map[string]string{"a/bad.go": guardedBad, "a/good.go": guardedGood})
	var stdout, stderr strings.Builder
	rc := run([]string{"-root", dir}, &stdout, &stderr)
	if rc != 1 {
		t.Fatalf("rc = %d, want 1; stderr: %s", rc, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "bad.go:7") || !strings.Contains(out, "make(") {
		t.Errorf("bare make not flagged:\n%s", out)
	}
	if !strings.Contains(out, "bad.go:8") || !strings.Contains(out, "sort.Slice") {
		t.Errorf("sort.Slice not flagged:\n%s", out)
	}
	if strings.Contains(out, "good.go") {
		t.Errorf("sanctioned/commented lines flagged:\n%s", out)
	}
}

func TestAllocvetIgnoresUnguardedFiles(t *testing.T) {
	dir := writeTree(t, map[string]string{"q/free.go": unguarded, "p/good.go": guardedGood})
	var stdout, stderr strings.Builder
	if rc := run([]string{"-root", dir}, &stdout, &stderr); rc != 0 {
		t.Fatalf("rc = %d, want 0; out: %s stderr: %s", rc, stdout.String(), stderr.String())
	}
}

func TestAllocvetFailsWithoutGuardedFiles(t *testing.T) {
	dir := writeTree(t, map[string]string{"q/free.go": unguarded})
	var stdout, stderr strings.Builder
	if rc := run([]string{"-root", dir}, &stdout, &stderr); rc != 2 {
		t.Fatalf("rc = %d, want 2 when the marker convention disappears", rc)
	}
}

func TestAllocvetSkipsTestFiles(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"p/good.go":     guardedGood,
		"p/hot_test.go": "// alloc-guarded\npackage p\nimport \"sort\"\nfunc t(xs []int) { _ = make([]int, 1); sort.Slice(xs, nil) }\n",
	})
	var stdout, stderr strings.Builder
	if rc := run([]string{"-root", dir}, &stdout, &stderr); rc != 0 {
		t.Fatalf("rc = %d, want 0 (test files exempt); out: %s", rc, stdout.String())
	}
}

// TestAllocvetRepoIsClean runs the real check over this repository — the
// same invocation CI uses — so a violation fails here first.
func TestAllocvetRepoIsClean(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("repo root not found")
	}
	var stdout, stderr strings.Builder
	if rc := run([]string{"-root", root}, &stdout, &stderr); rc != 0 {
		t.Fatalf("allocvet found violations in the repo (rc %d):\n%s%s", rc, stdout.String(), stderr.String())
	}
}
