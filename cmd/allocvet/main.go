// Command allocvet enforces the repository's zero-allocation convention on
// hot-path files. A file opts in with a marker comment line starting with
// `// alloc-guarded` (conventionally the first line, above the package
// clause); allocvet then flags two things inside it:
//
//   - sort.Slice / sort.SliceStable / sort.SliceIsSorted calls — their
//     less-closure escapes and allocates on every call; guarded code must
//     use sort.Sort on a typed slice, the stdlib value sorts, or an inline
//     insertion sort instead.
//   - bare make( calls — allocation in guarded files must be explicitly
//     sanctioned with a trailing `// alloc: ok` comment (growth paths, pool
//     warmup), so every remaining allocation site is a reviewed decision.
//
// The TestAllocGuard* suites catch allocation regressions empirically;
// allocvet catches them structurally, before a benchmark has to notice.
//
// Usage:
//
//	allocvet [-root dir] [pkg-dir ...]
//
// With no package dirs, the whole tree under -root (default ".") is
// scanned, skipping testdata and _ prefixed directories. Test files are
// exempt. Exit status: 0 clean, 1 findings, 2 usage/IO errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

const (
	markerComment   = "// alloc-guarded"
	sanctionComment = "// alloc: ok"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs_ := flag.NewFlagSet("allocvet", flag.ContinueOnError)
	fs_.SetOutput(stderr)
	root := fs_.String("root", ".", "tree to scan when no package dirs are given")
	if err := fs_.Parse(args); err != nil {
		return 2
	}

	var files []string
	var err error
	if dirs := fs_.Args(); len(dirs) > 0 {
		files, err = collectDirs(dirs)
	} else {
		files, err = collectTree(*root)
	}
	if err != nil {
		fmt.Fprintln(stderr, "allocvet:", err)
		return 2
	}

	findings := 0
	guarded := 0
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "allocvet:", err)
			return 2
		}
		src := string(data)
		if !isGuarded(src) {
			continue
		}
		guarded++
		for _, f := range vetFile(path, src) {
			fmt.Fprintln(stdout, f)
			findings++
		}
	}
	if guarded == 0 {
		fmt.Fprintln(stderr, "allocvet: no alloc-guarded files found")
		return 2
	}
	if findings > 0 {
		fmt.Fprintf(stdout, "allocvet: %d finding(s) in %d guarded file(s)\n", findings, guarded)
		return 1
	}
	fmt.Fprintf(stdout, "allocvet: ok (%d guarded file(s))\n", guarded)
	return 0
}

// isGuarded reports whether src opts into vetting: some line, trimmed, must
// start with the marker comment. Mentioning the marker mid-line (as this
// tool's own documentation does) does not opt a file in.
func isGuarded(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), markerComment) {
			return true
		}
	}
	return false
}

// vetFile scans one guarded file's source and returns a finding per
// offending line.
func vetFile(path, src string) []string {
	var out []string
	for i, line := range strings.Split(src, "\n") {
		code := stripLineComment(line)
		sanctioned := strings.Contains(line, sanctionComment)
		if idx := strings.Index(code, "sort.Slice"); idx >= 0 {
			out = append(out, fmt.Sprintf(
				"%s:%d: sort.Slice* in alloc-guarded file (closure allocates per call; use a typed sort.Sort or an inline insertion sort)",
				path, i+1))
			_ = idx
		}
		if hasBareMake(code) && !sanctioned {
			out = append(out, fmt.Sprintf(
				"%s:%d: make( in alloc-guarded file without a trailing %q comment",
				path, i+1, sanctionComment))
		}
	}
	return out
}

// stripLineComment removes a trailing // comment so commented-out code and
// the sanction comments themselves are not matched as code.
func stripLineComment(line string) string {
	// Good enough for this repo: no // inside string literals on hot paths.
	if i := strings.Index(line, "//"); i >= 0 {
		return line[:i]
	}
	return line
}

// hasBareMake reports whether the code (comment-stripped) calls make(.
// Identifiers like remake( or q.make are not flagged.
func hasBareMake(code string) bool {
	for i := 0; ; {
		j := strings.Index(code[i:], "make(")
		if j < 0 {
			return false
		}
		j += i
		if j == 0 || !isIdentChar(code[j-1]) {
			return true
		}
		i = j + len("make(")
	}
}

func isIdentChar(b byte) bool {
	return b == '_' || b == '.' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

// collectTree walks root for non-test .go files.
func collectTree(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

// collectDirs lists non-test .go files directly inside each dir.
func collectDirs(dirs []string) ([]string, error) {
	var files []string
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				files = append(files, filepath.Join(dir, n))
			}
		}
	}
	return files, nil
}
