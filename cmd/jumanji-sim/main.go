// Command jumanji-sim runs one LLC-design simulation over a datacenter
// workload and prints the resulting metrics: per-application tail latency
// and allocation, batch weighted speedup, security vulnerability, and the
// energy breakdown.
//
// Examples:
//
//	jumanji-sim -design jumanji -lc xapian
//	jumanji-sim -design jigsaw -lc mixed -load low -epochs 120
//	jumanji-sim -design all -vms 12 -seed 3
//	jumanji-sim -design jumanji -lc datacenter -mesh 16x16 -shard 4x4
//	jumanji-sim -design all -events out.jsonl -tracefile out.trace.json
//	jumanji-sim -design all -journal run.journal -keep-going
//
// Exit status: 0 on success, 1 when any design run failed, was skipped, or
// an interrupt drained the run, 2 on usage errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"jumanji"
	"jumanji/internal/obs"
	"jumanji/internal/obs/statusz"
	"jumanji/internal/sweep"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		designFlag = flag.String("design", "jumanji", "design to run: static, adaptive, vm-part, jigsaw, jumanji, insecure, ideal, or 'all'")
		lc         = flag.String("lc", "xapian", "latency-critical app (masstree, xapian, img-dnn, silo, moses), 'mixed', or 'datacenter' (mesh-proportional VM fleet)")
		load       = flag.String("load", "high", "latency-critical load: high (~50% util) or low (~10%)")
		epochs     = flag.Int("epochs", 60, "number of 100 ms reconfiguration epochs")
		warmup     = flag.Int("warmup", 20, "epochs excluded from statistics")
		seed       = flag.Int64("seed", 1, "workload seed")
		vms        = flag.Int("vms", 4, "VM count: 4 runs the standard case study; 1, 2, 5, 10, 12 run the Fig. 17 splits")
		router     = flag.Int("router", 2, "NoC router delay in cycles (1-3)")
		mesh       = flag.String("mesh", "5x4", "mesh topology WxH (Table II: 5x4; big meshes pair with -lc datacenter and -shard)")
		shard      = flag.String("shard", "", "hierarchical D-NUCA placement region WxH (e.g. 4x4); empty = flat placement")
		perApp     = flag.Bool("apps", false, "print per-application metrics")
		asJSON     = flag.Bool("json", false, "emit results as JSON")
		par        = flag.Int("parallel", 0, "worker count for fanning design runs across cores (0 = one per CPU, 1 = serial; output is identical either way)")
	)
	var sinks obs.CLI
	sinks.RegisterFlags(flag.CommandLine)
	var status statusz.CLI
	status.RegisterFlags(flag.CommandLine)
	var resil sweep.CLI
	resil.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if status.Addr != "" {
		sinks.SpansOn = true // -status implies -spans
	}
	if err := sinks.Open(); err != nil {
		return fatal(err)
	}

	opts := jumanji.DefaultOptions()
	opts.Epochs, opts.Warmup, opts.Seed = *epochs, *warmup, *seed
	opts.RouterDelay = *router
	var err error
	if opts.MeshW, opts.MeshH, err = parseDims(*mesh); err != nil {
		fmt.Fprintln(os.Stderr, "jumanji-sim:", err)
		return 2
	}
	if *shard != "" {
		if opts.ShardRegionW, opts.ShardRegionH, err = parseDims(*shard); err != nil {
			fmt.Fprintln(os.Stderr, "jumanji-sim:", err)
			return 2
		}
	}
	opts.HighLoad = *load != "low"
	opts.Parallel = *par
	opts.Metrics, opts.Events, opts.Trace = sinks.Registry(), sinks.Events(), sinks.Trace()
	opts.TS = sinks.TS()
	opts.Prov = sinks.Prov()
	opts.Spans = sinks.Spans()
	opts.Progress = status.Tracker()

	fingerprint := fmt.Sprintf("jumanji-sim|design=%s|lc=%s|load=%s|epochs=%d|warmup=%d|seed=%d|vms=%d|router=%d|mesh=%dx%d|shard=%dx%d|metrics=%t|events=%t|trace=%t|tsdb=%t|prov=%t",
		strings.ToLower(*designFlag), *lc, *load, *epochs, *warmup, *seed, *vms, *router,
		opts.MeshW, opts.MeshH, opts.ShardRegionW, opts.ShardRegionH,
		opts.Metrics != nil, opts.Events != nil, opts.Trace != nil, opts.TS != nil, opts.Prov != nil)
	repro := func(label string, cell int) string {
		extra := ""
		if *shard != "" {
			extra = " -shard " + *shard
		}
		return fmt.Sprintf("jumanji-sim -design %s -lc %s -load %s -epochs %d -warmup %d -seed %d -vms %d -router %d -mesh %s%s -cell '%s:%d'",
			*designFlag, *lc, *load, *epochs, *warmup, *seed, *vms, *router, *mesh, extra, label, cell)
	}
	engine, inj, err := resil.Build(*seed, fingerprint, repro)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jumanji-sim:", err)
		return 2
	}
	opts.Engine, opts.Chaos, opts.CheckInvariants = engine, inj, resil.Check
	if engine != nil {
		defer sweep.HandleInterrupt(engine.Stop, os.Stderr)()
	}

	if err := status.Start(statusz.Info{
		Command: "jumanji-sim",
		Config: map[string]string{
			"design": *designFlag,
			"lc":     *lc,
			"epochs": fmt.Sprint(*epochs),
			"seed":   fmt.Sprint(*seed),
		},
	}, opts.Spans); err != nil {
		return fatal(err)
	}
	defer status.Close()
	if status.Addr != "" {
		opts.PublishMetrics = status.PublishMetrics
		opts.PublishTimeseries = status.PublishTimeseries
		if opts.Prov != nil {
			opts.PublishProvenance = status.PublishProvenance
		}
	}

	build := workloadBuilder(*lc, *vms, *seed)

	var designs []jumanji.Design
	if strings.EqualFold(*designFlag, "all") {
		designs = jumanji.AllDesigns()
	} else {
		d, err := jumanji.ParseDesign(*designFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jumanji-sim:", err)
			return 2
		}
		designs = []jumanji.Design{d}
	}

	results, err := jumanji.Compare(opts, build, designs...)
	if cerr := resil.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		var rerr *sweep.RunError
		var done *sweep.OnlyDone
		switch {
		case errors.As(err, &rerr):
			rerr.Report.WriteText(os.Stderr)
			fmt.Fprintf(os.Stderr, "jumanji-sim: %v\n", rerr)
			return 1
		case errors.As(err, &done):
			fmt.Fprintf(os.Stderr, "jumanji-sim: cell %s complete\n", done.Ref)
			return 0
		}
		return fatal(err)
	}
	if resil.Cell != "" {
		// A matching -cell ends the run via OnlyDone above; reaching here
		// means the label never came up.
		fmt.Fprintf(os.Stderr, "jumanji-sim: -cell %s matched no sweep; pair it with the -design/-lc flags it came from\n", resil.Cell)
		return 2
	}
	if err := sinks.Close(); err != nil {
		return fatal(err)
	}
	if engine != nil {
		if rep := engine.Report(); rep.Resumed > 0 {
			fmt.Fprintf(os.Stderr, "jumanji-sim: resumed %d journalled cell(s)\n", rep.Resumed)
		}
	}

	if *asJSON {
		type jsonResult struct {
			Design          string               `json:"design"`
			TailVsDeadline  float64              `json:"tail_vs_deadline"`
			SpeedupVsStatic float64              `json:"speedup_vs_static"`
			Vulnerability   float64              `json:"vulnerability"`
			EnergyNJ        float64              `json:"energy_nj"`
			Apps            []jumanji.AppMetrics `json:"apps,omitempty"`
		}
		out := make([]jsonResult, len(results))
		for i, r := range results {
			out[i] = jsonResult{
				Design:          r.Design.String(),
				TailVsDeadline:  r.WorstNormTail,
				SpeedupVsStatic: r.SpeedupVsStatic,
				Vulnerability:   r.Vulnerability,
				EnergyNJ:        r.Energy.Total(),
			}
			if *perApp {
				out[i].Apps = r.Apps
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fatal(err)
		}
		return 0
	}

	fmt.Printf("%-22s %14s %14s %14s %12s\n",
		"design", "tail/deadline", "speedup", "vulnerability", "energy (mJ)")
	for _, r := range results {
		fmt.Printf("%-22s %14.2f %14.3f %14.2f %12.2f\n",
			r.Design, r.WorstNormTail, r.SpeedupVsStatic, r.Vulnerability, r.Energy.Total()/1e6)
	}
	if *perApp {
		for _, r := range results {
			fmt.Printf("\n--- %s ---\n", r.Design)
			fmt.Printf("%-16s %4s %6s %12s %10s %10s\n", "app", "vm", "type", "tail/ddl", "alloc MB", "hops")
			for _, a := range r.Apps {
				kind := "batch"
				tail := "-"
				if a.LatencyCritical {
					kind = "lc"
					tail = fmt.Sprintf("%.2f", a.NormTail)
				}
				fmt.Printf("%-16s %4d %6s %12s %10.2f %10.2f\n",
					a.Name, a.VM, kind, tail, a.AllocMB, a.MeanHops)
			}
		}
	}
	return 0
}

func workloadBuilder(lc string, vms int, seed int64) func(jumanji.Options) (jumanji.Workload, error) {
	if strings.EqualFold(lc, "datacenter") {
		return jumanji.Datacenter(seed)
	}
	if vms != 4 {
		return jumanji.Scaling(vms, seed)
	}
	if strings.EqualFold(lc, "mixed") {
		return jumanji.MixedCaseStudy(seed)
	}
	return jumanji.CaseStudy(lc, seed)
}

// parseDims parses a "WxH" topology flag.
func parseDims(s string) (w, h int, err error) {
	if n, _ := fmt.Sscanf(s, "%dx%d", &w, &h); n != 2 || w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("invalid dimensions %q (want WxH, e.g. 16x16)", s)
	}
	return w, h, nil
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "jumanji-sim:", err)
	return 1
}
