module jumanji

go 1.22
