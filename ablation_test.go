package jumanji

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// isolates one mechanism and reports, as custom metrics, how much it
// matters. They complement the per-figure benchmarks: figures reproduce
// the paper, ablations justify the reproduction's modeling choices.

import (
	"math/rand"
	"testing"

	"jumanji/internal/core"
	"jumanji/internal/system"
)

func ablationWorkload(b *testing.B, seed int64) (system.Config, system.Workload) {
	b.Helper()
	cfg := system.DefaultConfig()
	cfg.Seed = seed
	rng := rand.New(rand.NewSource(seed))
	wl, err := system.CaseStudyWorkload(cfg.Machine, "xapian", rng, true)
	if err != nil {
		b.Fatal(err)
	}
	return cfg, wl
}

// BenchmarkAblationTrading reproduces the paper's negative result
// (Sec. VIII-C): the sophisticated trading algorithm accepts almost no
// trades under the cannot-penalize-latency-critical constraint and gains
// almost nothing over plain Jumanji.
func BenchmarkAblationTrading(b *testing.B) {
	var gain, acceptRate float64
	for i := 0; i < b.N; i++ {
		cfg, wl := ablationWorkload(b, 61)
		base := system.Run(cfg, wl, core.JumanjiPlacer{}, 40, 15)
		trader := &core.TradePlacer{}
		traded := system.Run(cfg, wl, trader, 40, 15)
		gain = traded.BatchWeightedSpeedup/base.BatchWeightedSpeedup - 1
		if trader.TradesAttempted > 0 {
			acceptRate = float64(trader.TradesAccepted) / float64(trader.TradesAttempted)
		}
	}
	b.ReportMetric(gain*100, "trading-gain-%")
	b.ReportMetric(acceptRate*100, "trade-accept-%")
}

// BenchmarkAblationVantage swaps way-partitioning for Vantage-style
// fine-grained partitioning in the performance model. VM-Part — whose
// weakness is precisely the associativity loss of per-VM way masks
// (Sec. II-C: "only a few partitions can be used before performance drops
// precipitously") — should recover batch performance, while Jumanji, whose
// D-NUCA partitions already have ~whole-bank associativity, barely moves.
func BenchmarkAblationVantage(b *testing.B) {
	var vmPartGain, jumanjiGain float64
	for i := 0; i < b.N; i++ {
		cfg, wl := ablationWorkload(b, 67)
		fine := cfg
		fine.FineGrainedPartitioning = true
		gain := func(p core.Placer) float64 {
			way := system.Run(cfg, wl, p, 40, 15)
			van := system.Run(fine, wl, p, 40, 15)
			return van.BatchWeightedSpeedup/way.BatchWeightedSpeedup - 1
		}
		vmPartGain = gain(core.VMPartPlacer{})
		jumanjiGain = gain(core.JumanjiPlacer{})
	}
	b.ReportMetric(vmPartGain*100, "vmpart-gain-%")
	b.ReportMetric(jumanjiGain*100, "jumanji-gain-%")
}

// BenchmarkAblationBurstiness disables the LCVisibleRate asymmetry
// (latency-critical apps appear to data-movement placers at their full
// time-averaged intensity). Jigsaw's deadline violations should soften
// substantially — showing this assumption carries the paper's "Jigsaw
// starves latency-critical applications" behaviour, as documented in
// EXPERIMENTS.md.
func BenchmarkAblationBurstiness(b *testing.B) {
	var withTail, withoutTail float64
	for i := 0; i < b.N; i++ {
		cfg, wl := ablationWorkload(b, 42)
		r := system.Run(cfg, wl, core.JigsawPlacer{}, 40, 15)
		withTail = r.WorstNormTail
		cfg.LCVisibleRate = 1.0
		r = system.Run(cfg, wl, core.JigsawPlacer{}, 40, 15)
		withoutTail = r.WorstNormTail
	}
	b.ReportMetric(withTail, "jigsaw-tail-bursty")
	b.ReportMetric(withoutTail, "jigsaw-tail-smooth")
}

// BenchmarkAblationShrinkPatience compares the controller's default
// two-window shrink hysteresis against shrink-on-first-quiet-window
// (patience 1): without patience the controller dithers into the queueing
// cliff and the tail degrades, at essentially no batch cost.
func BenchmarkAblationShrinkPatience(b *testing.B) {
	var patientTail, eagerTail float64
	for i := 0; i < b.N; i++ {
		cfg, wl := ablationWorkload(b, 73)
		r := system.Run(cfg, wl, core.JumanjiPlacer{}, 40, 15)
		patientTail = r.WorstNormTail
		cfg.Feedback.ShrinkPatience = 1
		r = system.Run(cfg, wl, core.JumanjiPlacer{}, 40, 15)
		eagerTail = r.WorstNormTail
	}
	b.ReportMetric(patientTail, "tail-patience2")
	b.ReportMetric(eagerTail, "tail-patience1")
}

// BenchmarkAblationHull runs Jigsaw's capacity division on raw (cliffed)
// miss curves instead of convex hulls. The hull matches DRRIP's actual
// behaviour (Sec. IV-A) and smooths lookahead's search; raw curves change
// allocations and usually cost batch performance.
func BenchmarkAblationHull(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		cfg, wl := ablationWorkload(b, 79)
		hulled := system.Run(cfg, wl, core.JigsawPlacer{}, 40, 15)
		raw := system.Run(cfg, wl, core.RawCurveJigsawPlacer{}, 40, 15)
		delta = raw.BatchWeightedSpeedup/hulled.BatchWeightedSpeedup - 1
	}
	b.ReportMetric(delta*100, "raw-vs-hull-%")
}

// BenchmarkAblationQueueControl compares the paper's tail-latency feedback
// (Listing 1) against the queue-depth alternative it sketches (Sec. V-C).
// Both should meet deadlines; the comparison shows what the extra
// application-provided signal buys (or doesn't).
func BenchmarkAblationQueueControl(b *testing.B) {
	var tailCtl, queueCtl, tailAlloc, queueAlloc float64
	for i := 0; i < b.N; i++ {
		cfg, wl := ablationWorkload(b, 42)
		r := system.Run(cfg, wl, core.JumanjiPlacer{}, 40, 15)
		tailCtl = r.WorstNormTail
		tailAlloc = meanLCAlloc(r)
		cfg.QueueControl = true
		r = system.Run(cfg, wl, core.JumanjiPlacer{}, 40, 15)
		queueCtl = r.WorstNormTail
		queueAlloc = meanLCAlloc(r)
	}
	b.ReportMetric(tailCtl, "tail-ctrl-tail")
	b.ReportMetric(queueCtl, "queue-ctrl-tail")
	b.ReportMetric(tailAlloc, "tail-ctrl-MB")
	b.ReportMetric(queueAlloc, "queue-ctrl-MB")
}

func meanLCAlloc(r *system.RunResult) float64 {
	total, n := 0.0, 0
	for _, a := range r.Apps {
		if a.LatencyCritical {
			total += a.MeanAllocMB
			n++
		}
	}
	return total / float64(n)
}

// BenchmarkAblationReconfigPeriod sweeps the reconfiguration period
// (Sec. IV-B: "More frequent reconfigurations do not improve results").
// On the steady case-study workload, speedup should be nearly flat from
// every-epoch down to every-tenth-epoch reconfiguration; the controllers'
// tail response degrades gently as updates apply later.
func BenchmarkAblationReconfigPeriod(b *testing.B) {
	var sp1, sp5, sp10, tail10 float64
	for i := 0; i < b.N; i++ {
		cfg, wl := ablationWorkload(b, 42)
		run := func(n int) *system.RunResult {
			c := cfg
			c.ReconfigEpochs = n
			return system.Run(c, wl, core.JumanjiPlacer{}, 40, 15)
		}
		base := run(1)
		sp1 = 1
		sp5 = run(5).BatchWeightedSpeedup / base.BatchWeightedSpeedup
		r10 := run(10)
		sp10 = r10.BatchWeightedSpeedup / base.BatchWeightedSpeedup
		tail10 = r10.WorstNormTail
	}
	_ = sp1
	b.ReportMetric(sp5, "speedup-every5-rel")
	b.ReportMetric(sp10, "speedup-every10-rel")
	b.ReportMetric(tail10, "tail-every10")
}
