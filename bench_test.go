package jumanji

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment end to end through the same harness
// cmd/figures uses, at a reduced protocol scale so `go test -bench=.`
// completes in minutes; run `cmd/figures -paper` for the 40-mix protocol.
// Custom metrics surface the headline quantity of each experiment so the
// benchmark output doubles as a results table (see EXPERIMENTS.md).

import (
	"io"
	"math/rand"
	"testing"

	"jumanji/internal/core"
	"jumanji/internal/harness"
	"jumanji/internal/obs"
	"jumanji/internal/obs/tsdb"
	"jumanji/internal/system"
)

// benchOptions keeps each figure's regeneration to a few seconds.
func benchOptions() harness.Options {
	return harness.Options{Mixes: 2, Epochs: 30, Warmup: 10, Seed: 1}
}

func BenchmarkFig04CaseStudyTimeline(b *testing.B) {
	var lastJigsaw, lastJumanji float64
	for i := 0; i < b.N; i++ {
		r := harness.Fig4(benchOptions())
		for d, name := range r.Designs {
			final := r.LatNorm[d][len(r.LatNorm[d])-1]
			switch name {
			case "Jigsaw":
				lastJigsaw = final
			case "Jumanji":
				lastJumanji = final
			}
		}
	}
	b.ReportMetric(lastJigsaw, "jigsaw-final-lat/ddl")
	b.ReportMetric(lastJumanji, "jumanji-final-lat/ddl")
}

func BenchmarkFig05CaseStudy(b *testing.B) {
	var jumanjiSpeedup float64
	for i := 0; i < b.N; i++ {
		for _, row := range harness.Fig5(benchOptions()) {
			if row.Design == "Jumanji" {
				jumanjiSpeedup = row.Speedup
			}
		}
	}
	b.ReportMetric(jumanjiSpeedup, "jumanji-speedup")
}

func BenchmarkFig08TailVsAllocation(b *testing.B) {
	var crossoverMB float64
	for i := 0; i < b.N; i++ {
		crossoverMB = 0
		for _, p := range harness.Fig8(benchOptions()) {
			if crossoverMB == 0 && p.NormTailDNUCA <= 1 && p.NormTailSNUCA > 1 {
				crossoverMB = p.AllocMB
			}
		}
	}
	b.ReportMetric(crossoverMB, "dnuca-crossover-MB")
}

func BenchmarkFig09ControllerSensitivity(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows := harness.Fig9(benchOptions())
		lo, hi := rows[0].Speedup, rows[0].Speedup
		for _, r := range rows {
			if r.Speedup < lo {
				lo = r.Speedup
			}
			if r.Speedup > hi {
				hi = r.Speedup
			}
		}
		spread = (hi - lo) / lo
	}
	b.ReportMetric(spread*100, "speedup-spread-%")
}

func BenchmarkFig11PortAttack(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r := harness.Fig11(benchOptions())
		gap = r.Signal.SameBank - r.Signal.OtherBank
	}
	b.ReportMetric(gap, "same-bank-extra-cycles")
}

func BenchmarkFig12PerformanceLeakage(b *testing.B) {
	var snucaSpread, dnucaSpread float64
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Mixes = 4
		r := harness.Fig12(o)
		snucaSpread = r.SNUCA[len(r.SNUCA)-1] - r.SNUCA[0]
		dnucaSpread = r.DNUCA[len(r.DNUCA)-1] - r.DNUCA[0]
	}
	b.ReportMetric(snucaSpread, "snuca-tail-spread")
	b.ReportMetric(dnucaSpread, "dnuca-tail-spread")
}

func BenchmarkFig13MainResults(b *testing.B) {
	var jumanjiSpeedup, jigsawWorstTail float64
	for i := 0; i < b.N; i++ {
		res := harness.Fig13(benchOptions())
		for _, row := range res.Rows {
			for _, d := range row {
				switch d.Design {
				case "Jumanji":
					jumanjiSpeedup += d.Speedup.Median
				case "Jigsaw":
					if d.NormTail.Max > jigsawWorstTail {
						jigsawWorstTail = d.NormTail.Max
					}
				}
			}
		}
		jumanjiSpeedup /= float64(len(res.Rows))
	}
	b.ReportMetric(jumanjiSpeedup, "jumanji-mean-speedup")
	b.ReportMetric(jigsawWorstTail, "jigsaw-worst-tail/ddl")
}

func BenchmarkFig14Vulnerability(b *testing.B) {
	var jigsaw, jumanji float64
	for i := 0; i < b.N; i++ {
		for _, row := range harness.Fig14(benchOptions()) {
			switch row.Design {
			case "Jigsaw":
				jigsaw = row.Vulnerability
			case "Jumanji":
				jumanji = row.Vulnerability
			}
		}
	}
	b.ReportMetric(jigsaw, "jigsaw-attackers")
	b.ReportMetric(jumanji, "jumanji-attackers")
}

func BenchmarkFig15Energy(b *testing.B) {
	var jumanjiVsStatic float64
	for i := 0; i < b.N; i++ {
		for _, row := range harness.Fig15(benchOptions()) {
			if row.Design == "Jumanji" {
				jumanjiVsStatic = row.TotalVsStatic
			}
		}
	}
	b.ReportMetric(jumanjiVsStatic, "jumanji-energy-vs-static")
}

func BenchmarkFig16Variants(b *testing.B) {
	var worstGapToIdeal float64
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Mixes = 1
		worstGapToIdeal = 0
		for _, row := range harness.Fig16(o) {
			if gap := row.IdealBatch - row.Jumanji; gap > worstGapToIdeal {
				worstGapToIdeal = gap
			}
		}
	}
	b.ReportMetric(worstGapToIdeal*100, "worst-gap-to-ideal-%")
}

func BenchmarkFig17VMScaling(b *testing.B) {
	var min, max float64
	for i := 0; i < b.N; i++ {
		rows := harness.Fig17(benchOptions())
		min, max = rows[0].Speedup, rows[0].Speedup
		for _, r := range rows {
			if r.Speedup < min {
				min = r.Speedup
			}
			if r.Speedup > max {
				max = r.Speedup
			}
		}
	}
	b.ReportMetric(min, "min-speedup")
	b.ReportMetric(max, "max-speedup")
}

func BenchmarkFig18NoCSensitivity(b *testing.B) {
	var atOne, atThree float64
	for i := 0; i < b.N; i++ {
		rows := harness.Fig18(benchOptions())
		atOne, atThree = rows[0].Speedup, rows[2].Speedup
	}
	b.ReportMetric(atOne, "speedup-1cy-router")
	b.ReportMetric(atThree, "speedup-3cy-router")
}

func BenchmarkTable1Scorecard(b *testing.B) {
	var jumanjiScore float64
	for i := 0; i < b.N; i++ {
		for _, row := range harness.Table1(benchOptions()) {
			if row.Design == "Jumanji" {
				jumanjiScore = 0
				if row.TailLatency {
					jumanjiScore++
				}
				if row.Security {
					jumanjiScore++
				}
				if row.BatchSpeedup {
					jumanjiScore++
				}
			}
		}
	}
	b.ReportMetric(jumanjiScore, "jumanji-score-of-3")
}

// BenchmarkPlacementAlgorithmOverhead measures the wall-clock cost of one
// JumanjiPlacer reconfiguration on the standard 20-application input —
// the §IV-B overhead claim (11.9 Mcycles per 100 ms epoch, 0.22% of system
// cycles on the paper's 20-core 2.66 GHz machine).
func BenchmarkPlacementAlgorithmOverhead(b *testing.B) {
	cfg := system.DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	wl, err := system.CaseStudyWorkload(cfg.Machine, "xapian", rng, true)
	if err != nil {
		b.Fatal(err)
	}
	// One epoch to warm state, then extract a representative input by
	// running the placer inside the benchmark loop on a fresh Input each
	// time (the input construction itself is part of the OS work).
	in := benchInput(cfg, wl)
	placer := core.JumanjiPlacer{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placer.Place(in)
	}
	b.StopTimer()
	nsPerPlace := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	cycles := nsPerPlace * cfg.FreqHz / 1e9
	overheadPct := cycles / (float64(cfg.Machine.Banks()) * cfg.EpochSeconds * cfg.FreqHz) * 100
	b.ReportMetric(cycles/1e6, "Mcycles/reconfig")
	b.ReportMetric(overheadPct, "overhead-%")
}

// benchInput builds a placer input equivalent to what the runner assembles
// each epoch.
func benchInput(cfg system.Config, wl system.Workload) *core.Input {
	r := system.Run(cfg, wl, core.JumanjiPlacer{}, 3, 1)
	_ = r
	// Reconstruct an input directly from the workload profiles.
	in := &core.Input{Machine: cfg.Machine, LatSizes: map[core.AppID]float64{}}
	unit := cfg.Machine.WayBytes()
	points := cfg.CurvePoints()
	for i, a := range wl.Apps {
		spec := core.AppSpec{VM: a.VM, Core: a.Core, Name: a.Name()}
		if a.Batch != nil {
			spec.MissRatio = a.Batch.MissRatio(unit, points)
			spec.AccessRate = a.Batch.APKI / 1000
		} else {
			spec.MissRatio = a.LatCrit.MissRatio(unit, points)
			spec.AccessRate = a.LatCrit.APKI / 1000 * 0.3
			spec.LatencyCritical = true
			in.LatSizes[core.AppID(i)] = 2 << 20
		}
		in.Apps = append(in.Apps, spec)
	}
	return in
}

// BenchmarkObsOverhead is the observability layer's overhead guard: the
// same case-study run with no sinks (the production default — every
// instrumentation point reduces to a nil check) versus all three sinks
// enabled and writing to io.Discard. Compare ns/op between the sub-
// benchmarks; the disabled case must stay within ~2% of a build without
// instrumentation, and the README's zero-cost claim rests on this number:
//
//	go test -bench=ObsOverhead -count=5 .
func BenchmarkObsOverhead(b *testing.B) {
	setup := func(b *testing.B) (system.Config, system.Workload) {
		b.Helper()
		cfg := system.DefaultConfig()
		rng := rand.New(rand.NewSource(1))
		wl, err := system.CaseStudyWorkload(cfg.Machine, "xapian", rng, true)
		if err != nil {
			b.Fatal(err)
		}
		return cfg, wl
	}
	b.Run("disabled", func(b *testing.B) {
		cfg, wl := setup(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			system.Run(cfg, wl, core.JumanjiPlacer{}, 30, 10)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		cfg, wl := setup(b)
		cfg.Metrics = obs.NewRegistry()
		cfg.Events = obs.NewEventLog(io.Discard)
		cfg.Trace = obs.NewTrace(io.Discard)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			system.Run(cfg, wl, core.JumanjiPlacer{}, 30, 10)
		}
	})
	// The flight recorder on top of metrics: one registry sample per epoch
	// (counter deltas, gauge reads, three histogram quantiles) into the
	// ring store. Steady-state sampling allocates nothing
	// (TestAllocGuardRecorder); this bounds its time cost per epoch.
	b.Run("recorder", func(b *testing.B) {
		cfg, wl := setup(b)
		cfg.Metrics = obs.NewRegistry()
		cfg.TS = tsdb.New(tsdb.DefaultCapacity)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			system.Run(cfg, wl, core.JumanjiPlacer{}, 30, 10)
		}
	})
	// The span timer pair: all three sinks on with cfg.Spans left nil (the
	// default even when sinks are enabled — -spans is its own flag) versus
	// spans collecting. The nil case pins that the Start/Stop call sites
	// added to the runner cost one pointer check; the enabled case bounds
	// what -status/-spans adds on top: two clock reads and one locked
	// histogram observe per phase, amortized over a 100 ms-modeled epoch.
	b.Run("spans-disabled", func(b *testing.B) {
		cfg, wl := setup(b)
		cfg.Metrics = obs.NewRegistry()
		cfg.Events = obs.NewEventLog(io.Discard)
		cfg.Trace = obs.NewTrace(io.Discard)
		cfg.Spans = nil
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			system.Run(cfg, wl, core.JumanjiPlacer{}, 30, 10)
		}
	})
	b.Run("spans-enabled", func(b *testing.B) {
		cfg, wl := setup(b)
		cfg.Metrics = obs.NewRegistry()
		cfg.Events = obs.NewEventLog(io.Discard)
		cfg.Trace = obs.NewTrace(io.Discard)
		cfg.Spans = obs.NewSpans()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			system.Run(cfg, wl, core.JumanjiPlacer{}, 30, 10)
		}
	})
	// The provenance sink (fifth sink, schema v3): disabled is the
	// production default — every instrumentation point in the placers is
	// behind one nil-receiver Enabled() check, so this case must match
	// "disabled" in both time and allocations (TestAllocGuardProvenance
	// pins the allocation half). Enabled records one placement_decision
	// per placed VM/app per reconfiguration, with candidate lists and
	// elimination reasons, into io.Discard; this bounds what -provenance
	// costs on top of a bare run.
	b.Run("provenance-disabled", func(b *testing.B) {
		cfg, wl := setup(b)
		cfg.Prov = nil
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			system.Run(cfg, wl, core.JumanjiPlacer{}, 30, 10)
		}
	})
	b.Run("provenance-enabled", func(b *testing.B) {
		cfg, wl := setup(b)
		cfg.Prov = obs.NewEventLog(io.Discard)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			system.Run(cfg, wl, core.JumanjiPlacer{}, 30, 10)
		}
	})
}

// BenchmarkFiguresParallel is the experiment engine's scaling benchmark: the
// same Fig. 13 regeneration (the full mix×design product) run serially and
// fanned across every CPU. The rendered output is byte-identical either way
// (TestParallelEquivalence); only wall clock changes. Compare ns/op of the
// two sub-benchmarks — the engine's acceptance bar is >=2x on 4 cores:
//
//	go test -bench=FiguresParallel -count=3 .
func BenchmarkFiguresParallel(b *testing.B) {
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			o := benchOptions()
			o.Mixes = 4
			o.Parallel = workers
			for i := 0; i < b.N; i++ {
				harness.Fig13(o)
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0))
}
