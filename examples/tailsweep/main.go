// Tailsweep: reproduces Fig. 8 — how a latency-critical application's tail
// latency varies with its LLC allocation, with and without D-NUCA
// placement. The D-NUCA column meets the deadline with less space because
// nearby banks cut the per-access latency, raising the service rate at the
// same capacity.
package main

import (
	"fmt"
	"log"

	"jumanji"
)

func main() {
	opts := jumanji.DefaultOptions()
	opts.Epochs, opts.Warmup = 60, 20

	allocs := []float64{0.5, 1, 1.5, 2, 2.5, 3, 4, 6, 8}
	points, err := jumanji.TailVsAllocation(opts, "xapian", allocs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("xapian alone at high load: p95 latency / deadline vs fixed allocation")
	fmt.Printf("%-10s %10s %10s\n", "alloc MB", "S-NUCA", "D-NUCA")
	var crossover float64
	for _, p := range points {
		note := ""
		if p.NormTailDNUCA <= 1 && p.NormTailSNUCA > 1 {
			note = "  <- D-NUCA meets the deadline here, S-NUCA does not"
			if crossover == 0 {
				crossover = p.AllocMB
			}
		}
		fmt.Printf("%-10.2f %10.2f %10.2f%s\n", p.AllocMB, p.NormTailSNUCA, p.NormTailDNUCA, note)
	}
	fmt.Println()
	if crossover > 0 {
		fmt.Printf("D-NUCA frees roughly %.1f MB of LLC for other applications while still\n", 1.0)
		fmt.Println("meeting the deadline — capacity the Jumanji placer hands to batch apps.")
	} else {
		fmt.Println("No crossover found at this protocol scale; try more epochs.")
	}
}
