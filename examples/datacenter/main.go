// Datacenter: the full Sec. III case study. Runs every LLC design over the
// same four-VM workload and prints (a) the end-to-end comparison of Fig. 5
// and (b) the Fig. 4-style timeline showing how the feedback controller
// sizes the latency-critical allocations over time — and how Jigsaw, which
// optimizes only data movement, starves them into queueing collapse.
package main

import (
	"fmt"
	"log"

	"jumanji"
)

func main() {
	opts := jumanji.DefaultOptions()
	opts.Epochs, opts.Warmup = 80, 20
	workload := jumanji.MixedCaseStudy(7)

	results, err := jumanji.Compare(opts, workload, jumanji.AllDesigns()...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Four VMs, each one latency-critical app (masstree/xapian/img-dnn/silo)")
	fmt.Println("plus four SPEC batch apps, at high load.")
	fmt.Println()
	fmt.Printf("%-22s %14s %14s %14s\n", "design", "tail/deadline", "batch speedup", "attackers")
	for _, r := range results {
		fmt.Printf("%-22s %14.2f %14.3f %14.2f\n",
			r.Design, r.WorstNormTail, r.SpeedupVsStatic, r.Vulnerability)
	}

	fmt.Println()
	fmt.Println("Latency-critical allocation and latency over time (Fig. 4 style):")
	fmt.Printf("%-8s", "epoch")
	for _, d := range []jumanji.Design{jumanji.Adaptive, jumanji.Jigsaw, jumanji.Jumanji} {
		fmt.Printf("  %12s-MB %12s-lat", short(d), short(d))
	}
	fmt.Println()
	byDesign := map[jumanji.Design]*jumanji.Result{}
	for _, r := range results {
		byDesign[r.Design] = r
	}
	for e := 0; e < opts.Epochs; e += 8 {
		fmt.Printf("%-8d", e)
		for _, d := range []jumanji.Design{jumanji.Adaptive, jumanji.Jigsaw, jumanji.Jumanji} {
			tp := byDesign[d].Timeline[e]
			fmt.Printf("  %15.2f %16.2f", tp.LatCritAllocMB, tp.LatCritLatNorm)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Watch Jigsaw's latency column climb without bound while its allocation")
	fmt.Println("column stays near zero: data-movement-optimal, deadline-catastrophic.")
}

func short(d jumanji.Design) string {
	switch d {
	case jumanji.Adaptive:
		return "Adapt"
	case jumanji.Jigsaw:
		return "Jigsaw"
	case jumanji.Jumanji:
		return "Jumanji"
	}
	return d.String()
}
