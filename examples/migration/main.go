// Migration: demonstrates that Jumanji migrates LLC allocations along with
// threads (Sec. IV-B). A latency-critical application starts in one corner
// of the chip; halfway through the run its thread moves to the opposite
// corner. At the next 100 ms reconfiguration the placer re-reserves nearby
// banks at the new location, so the application's data distance — and its
// tail latency — recover immediately.
package main

import (
	"fmt"
	"log"

	"jumanji"
)

func main() {
	opts := jumanji.DefaultOptions()
	opts.Epochs, opts.Warmup = 80, 10

	// One VM: xapian plus three batch apps. App 0 (xapian, corner core 0)
	// migrates to core 19 (the opposite corner) at epoch 40.
	base := func(o jumanji.Options) (jumanji.Workload, error) {
		return jumanji.NewWorkload(o, []jumanji.VM{
			{LatCrit: []string{"xapian"}, Batch: []string{"429.mcf", "471.omnetpp", "470.lbm"}},
		}, 5)
	}
	const migrateAt = 40
	workload := jumanji.Migrate(base, migrateAt, 0, 19)

	r, err := jumanji.Run(opts, workload, jumanji.Jumanji)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("xapian migrates core 0 -> core 19 at epoch", migrateAt)
	fmt.Println()
	fmt.Printf("%-8s %12s %14s\n", "epoch", "alloc (MB)", "latency/ddl")
	for e := migrateAt - 12; e < migrateAt+16; e += 2 {
		tp := r.Timeline[e]
		marker := ""
		if e == migrateAt {
			marker = "  <- thread migrates; allocation follows at this reconfiguration"
		}
		fmt.Printf("%-8d %12.2f %14.2f%s\n", e, tp.LatCritAllocMB, tp.LatCritLatNorm, marker)
	}
	fmt.Println()
	if r.Apps[0].NormTail <= 1.1 {
		fmt.Printf("Post-migration p95 is %.2fx the deadline: the move was absorbed.\n", r.Apps[0].NormTail)
	} else {
		fmt.Printf("Post-migration p95 is %.2fx the deadline.\n", r.Apps[0].NormTail)
	}
	fmt.Printf("Mean data distance after settling: %.2f hops (nearest banks at the new corner).\n", r.Apps[0].MeanHops)
}
