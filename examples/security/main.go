// Security: demonstrates the LLC port attack of Sec. VI-B and shows how
// bank isolation closes it. An attacker repeatedly accesses one LLC bank
// and times itself; whenever a victim floods the same bank, the attacker's
// accesses queue behind the victim's at the bank port. The victim uses
// entirely different cache sets — way-partitioning is no defense.
//
// The example then compares each LLC design's exposure: the average number
// of untrusted applications that could mount this attack against a victim's
// accesses (Fig. 14).
package main

import (
	"fmt"
	"log"

	"jumanji"
)

func main() {
	fmt.Println("LLC port attack (Fig. 11): attacker mean access latency by victim state")
	rep := jumanji.PortAttackDemo(true)
	fmt.Printf("  victim idle:                 %6.1f cycles\n", rep.Idle)
	fmt.Printf("  victim flooding other banks: %6.1f cycles (NoC contention)\n", rep.OtherBank)
	fmt.Printf("  victim flooding SAME bank:   %6.1f cycles (port queueing -> leak)\n", rep.SameBank)
	fmt.Printf("  samples collected:           %d\n", len(rep.Samples))
	fmt.Println()
	fmt.Println("The attacker observes victim activity with zero shared cache lines.")
	fmt.Println()

	opts := jumanji.DefaultOptions()
	opts.Epochs, opts.Warmup = 40, 15
	results, err := jumanji.Compare(opts, jumanji.MixedCaseStudy(3),
		jumanji.Adaptive, jumanji.VMPart, jumanji.Jigsaw, jumanji.Jumanji)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Exposure by design (potential attackers per LLC access, Fig. 14):")
	for _, r := range results {
		bar := ""
		for i := 0; i < int(r.Vulnerability+0.5); i++ {
			bar += "#"
		}
		fmt.Printf("  %-22s %6.2f %s\n", r.Design, r.Vulnerability, bar)
	}
	fmt.Println()
	fmt.Println("S-NUCA designs expose every access to all 15 untrusted apps. Jigsaw's")
	fmt.Println("locality is a happy accident; Jumanji enforces zero sharing by design.")
}
