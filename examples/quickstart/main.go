// Quickstart: compare Jumanji against the Static baseline on the paper's
// case-study workload (four VMs, each running xapian plus four batch
// applications) and print the headline numbers — batch speedup, tail
// latency relative to the deadline, and port-attack vulnerability.
package main

import (
	"fmt"
	"log"

	"jumanji"
)

func main() {
	opts := jumanji.DefaultOptions()
	workload := jumanji.CaseStudy("xapian", 1)

	results, err := jumanji.Compare(opts, workload, jumanji.Static, jumanji.Jumanji)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Jumanji vs a naive static allocation, 4 VMs x (xapian + 4 SPEC apps):")
	fmt.Println()
	for _, r := range results {
		deadline := "meets deadlines"
		if !r.MeetsDeadlines(1.1) {
			deadline = fmt.Sprintf("VIOLATES deadlines (%.1fx)", r.WorstNormTail)
		}
		secure := "bank-isolated (0 potential attackers)"
		if r.Vulnerability > 0 {
			secure = fmt.Sprintf("%.1f potential attackers per LLC access", r.Vulnerability)
		}
		fmt.Printf("  %-10s batch speedup %.2fx | %s | %s\n",
			r.Design.String()+":", r.SpeedupVsStatic, deadline, secure)
	}
	fmt.Println()
	fmt.Println("Jumanji reserves just enough nearby LLC space for xapian's tail-latency")
	fmt.Println("deadline, gives every VM its own banks (closing conflict, port, and")
	fmt.Println("set-dueling channels), and packs batch data close to its cores.")
}
